// Package faultinject enumerates and injects crash points in the drain /
// recover pipeline. A drain episode is a deterministic stream of NVM writes;
// every write is a potential crash point ("step"). A CrashPlan picks one step
// and a fault flavor (clean power cut, torn 64 B write, bit flip, dropped
// flush); the Injector implements mem.FaultInjector and applies the plan,
// while a counting pass (Step < 0) measures how many steps an episode has so
// a matrix driver can replay it once per step per flavor.
package faultinject

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
)

// Flavor is a crash/corruption mode from the torture matrix (ISSUE 3 /
// paper §IV-C recoverability argument).
type Flavor int

const (
	// CleanCut models a clean power cut at a persist-ordering boundary:
	// the step-N write and everything after it never reach the NVM.
	CleanCut Flavor = iota
	// TornWrite models power loss mid-write: a prefix of the step-N block
	// lands, the rest keeps old content, and no later write lands.
	TornWrite
	// BitFlip lets the drain complete but flips one bit in the step-N
	// block (data, MAC, counter, or vault word — whatever step N wrote).
	BitFlip
	// DroppedWrite lets the drain complete but silently discards the
	// step-N write, e.g. a final metadata flush that never became durable.
	DroppedWrite
)

// Flavors is a flavor list with a flag-compatible textual form: its String
// is the comma-separated spelling ParseFlavors accepts, so a selection
// round-trips through flag plumbing losslessly.
type Flavors []Flavor

// String renders the list in ParseFlavors syntax ("clean-cut,torn-write,...").
func (fs Flavors) String() string {
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.String()
	}
	return strings.Join(names, ",")
}

// AllFlavors returns every flavor in matrix order.
func AllFlavors() Flavors { return Flavors{CleanCut, TornWrite, BitFlip, DroppedWrite} }

// String names the flavor for flags and reports.
func (f Flavor) String() string {
	switch f {
	case CleanCut:
		return "clean-cut"
	case TornWrite:
		return "torn-write"
	case BitFlip:
		return "bit-flip"
	case DroppedWrite:
		return "dropped-write"
	}
	return fmt.Sprintf("flavor(%d)", int(f))
}

// Interrupting reports whether the flavor ends the drain at the faulted
// step (true for CleanCut and TornWrite) or lets it run to completion with
// a corrupted write in the stream (BitFlip, DroppedWrite). Interrupting
// flavors crash with the drain's in-flight persistent registers; completing
// flavors crash with the end-of-drain registers.
func (f Flavor) Interrupting() bool { return f == CleanCut || f == TornWrite }

// ParseFlavor maps a flag string ("clean-cut", "torn-write", "bit-flip",
// "dropped-write") to its Flavor.
func ParseFlavor(s string) (Flavor, error) {
	for _, f := range AllFlavors() {
		if strings.EqualFold(s, f.String()) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown flavor %q (want one of %s)", s, FlavorNames())
}

// ParseFlavors parses a comma-separated flavor list; "all" or "" selects
// every flavor.
func ParseFlavors(s string) (Flavors, error) {
	if s == "" || strings.EqualFold(s, "all") {
		return AllFlavors(), nil
	}
	var out Flavors
	for _, part := range strings.Split(s, ",") {
		f, err := ParseFlavor(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// FlavorNames returns the comma-separated flavor vocabulary (for usage text).
func FlavorNames() string { return AllFlavors().String() }

// CrashPlan selects one crash point in a drain episode.
type CrashPlan struct {
	// Step is the 0-based index of the NVM write to fault. A negative
	// step never fires: the injector only counts, which is how the
	// matrix driver measures an episode's step total.
	Step int
	// Flavor is the fault applied at Step.
	Flavor Flavor
	// Seed deterministically derives the fault's free parameters (torn
	// prefix length, flipped byte and bit).
	Seed uint64
}

// FiredInfo records where a plan actually fired, for outcome reports.
type FiredInfo struct {
	Step  int    // write index the fault hit
	Addr  uint64 // NVM address of the faulted write
	Cat   string // access category of the faulted write
	Stage string // most recent MarkStage label ("" before the first mark)
}

// Injector implements mem.FaultInjector for one CrashPlan. It is not safe
// for concurrent use; each episode replay gets its own Injector.
type Injector struct {
	plan  CrashPlan
	step  int
	cut   bool
	fired bool
	info  FiredInfo
	stage string

	// OnCut, if set, is invoked exactly once at the instant an
	// interrupting flavor fires, before the faulted write is applied.
	// The torture harness uses it to capture the drain's in-flight
	// persistent registers — the state a real crash would leave behind.
	OnCut func()
}

// NewInjector returns an injector for plan.
func NewInjector(plan CrashPlan) *Injector { return &Injector{plan: plan} }

// Plan returns the injector's crash plan.
func (in *Injector) Plan() CrashPlan { return in.plan }

// Steps returns how many writes the injector has seen. After a counting
// pass (Step < 0) this is the episode's crash-point total.
func (in *Injector) Steps() int { return in.step }

// Fired reports whether the plan's fault was applied, and where.
func (in *Injector) Fired() (FiredInfo, bool) { return in.info, in.fired }

// OnStage records the current persist-ordering stage label.
func (in *Injector) OnStage(stage string) { in.stage = stage }

// OnWrite implements mem.FaultInjector: counts the write, fires the planned
// fault at the chosen step, and — for interrupting flavors — keeps
// suppressing every later write.
func (in *Injector) OnWrite(addr uint64, cat mem.Category) mem.Fault {
	idx := in.step
	in.step++
	if in.cut {
		return mem.Fault{Kind: mem.FaultCut}
	}
	if in.fired || in.plan.Step < 0 || idx != in.plan.Step {
		return mem.Fault{}
	}
	in.fired = true
	in.info = FiredInfo{Step: idx, Addr: addr, Cat: string(cat), Stage: in.stage}
	if in.plan.Flavor.Interrupting() {
		in.cut = true
		if in.OnCut != nil {
			in.OnCut()
		}
	}
	h := mix(in.plan.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	switch in.plan.Flavor {
	case CleanCut:
		return mem.Fault{Kind: mem.FaultCut}
	case TornWrite:
		return mem.Fault{Kind: mem.FaultTear, TornBytes: 1 + int(h%(mem.BlockSize-1))}
	case BitFlip:
		return mem.Fault{Kind: mem.FaultFlip, Byte: int(h % mem.BlockSize), Mask: 1 << ((h >> 8) % 8)}
	case DroppedWrite:
		return mem.Fault{Kind: mem.FaultDrop}
	}
	return mem.Fault{}
}

// mix is splitmix64's finalizer: a cheap, well-distributed hash for deriving
// fault parameters from (seed, step).
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SampleSteps picks the crash points to exercise out of total steps. With
// stride ≤ 1 and max ≤ 0 every step is chosen (the full matrix). A stride
// keeps every stride-th step; max then caps the count by evenly thinning.
// The first and last step are always included — the boundary crashes (first
// drain write, final metadata flush) are the paper's headline cases.
func SampleSteps(total, stride, max int) []int {
	if total <= 0 {
		return nil
	}
	if stride < 1 {
		stride = 1
	}
	picked := make(map[int]bool)
	for s := 0; s < total; s += stride {
		picked[s] = true
	}
	picked[0] = true
	picked[total-1] = true
	steps := make([]int, 0, len(picked))
	for s := range picked {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	if max > 0 && len(steps) > max {
		if max == 1 {
			return steps[:1]
		}
		thin := make([]int, 0, max)
		for i := 0; i < max; i++ {
			thin = append(thin, steps[i*(len(steps)-1)/(max-1)])
		}
		// The even thinning can repeat endpoints when max is tiny.
		steps = dedupSorted(thin)
	}
	return steps
}

func dedupSorted(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
