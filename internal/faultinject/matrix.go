package faultinject

// Outcome classifies one crash-matrix cell: what recovery produced after a
// drain episode was faulted by a CrashPlan. The contract (paper §IV-C,
// §IV-E) is that every cell must end in Restored, Partial, or Detected —
// SilentCorruption and InternalError are matrix failures.
type Outcome int

const (
	// OutcomeRestored: recovery reproduced the golden image byte-for-byte.
	OutcomeRestored Outcome = iota
	// OutcomePartial: an interrupting crash left some blocks at their
	// authentic pre-drain value (never persisted) while every recovered
	// block verified and matched golden. This is the expected result of
	// a power cut partway through a drain: data that never reached the
	// persistence domain is legitimately lost, not corrupted.
	OutcomePartial
	// OutcomeDetected: recovery (or post-recovery verification) returned
	// a typed detection error — the corruption was caught, as the
	// integrity machinery promises.
	OutcomeDetected
	// OutcomeSilentCorruption: recovery "succeeded" but produced bytes
	// that are neither golden nor authentic-stale, or a completed drain
	// lost data without any error. The failure the matrix exists to find.
	OutcomeSilentCorruption
	// OutcomeInternalError: recovery failed with an untyped error or
	// panic — a harness/implementation bug, not a detection.
	OutcomeInternalError
)

// String names the outcome for report tables.
func (o Outcome) String() string {
	switch o {
	case OutcomeRestored:
		return "restored"
	case OutcomePartial:
		return "partial"
	case OutcomeDetected:
		return "detected"
	case OutcomeSilentCorruption:
		return "SILENT-CORRUPTION"
	case OutcomeInternalError:
		return "INTERNAL-ERROR"
	}
	return "unknown"
}

// OK reports whether the outcome satisfies the recoverability contract.
func (o Outcome) OK() bool {
	return o == OutcomeRestored || o == OutcomePartial || o == OutcomeDetected
}
