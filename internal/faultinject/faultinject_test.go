package faultinject

import (
	"testing"

	"repro/internal/mem"
)

func TestCountingPassNeverFires(t *testing.T) {
	in := NewInjector(CrashPlan{Step: -1, Flavor: CleanCut})
	for i := 0; i < 10; i++ {
		if f := in.OnWrite(uint64(i*64), mem.CatData); f.Kind != mem.FaultNone {
			t.Fatalf("counting pass injected %v at write %d", f.Kind, i)
		}
	}
	if in.Steps() != 10 {
		t.Fatalf("Steps() = %d, want 10", in.Steps())
	}
	if _, fired := in.Fired(); fired {
		t.Fatal("counting pass reported fired")
	}
}

func TestCleanCutSuppressesTail(t *testing.T) {
	cutSeen := false
	in := NewInjector(CrashPlan{Step: 3, Flavor: CleanCut})
	in.OnCut = func() { cutSeen = true }
	kinds := make([]mem.FaultKind, 0, 6)
	for i := 0; i < 6; i++ {
		kinds = append(kinds, in.OnWrite(uint64(i*64), mem.CatCHVData).Kind)
	}
	want := []mem.FaultKind{mem.FaultNone, mem.FaultNone, mem.FaultNone, mem.FaultCut, mem.FaultCut, mem.FaultCut}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("write %d fault = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
	if !cutSeen {
		t.Fatal("OnCut was not invoked")
	}
	info, fired := in.Fired()
	if !fired || info.Step != 3 || info.Addr != 3*64 || info.Cat != string(mem.CatCHVData) {
		t.Fatalf("Fired() = %+v, %v", info, fired)
	}
}

func TestTornWriteInterruptsAndDerivesPrefix(t *testing.T) {
	in := NewInjector(CrashPlan{Step: 1, Flavor: TornWrite, Seed: 7})
	in.OnWrite(0, mem.CatData)
	f := in.OnWrite(64, mem.CatData)
	if f.Kind != mem.FaultTear {
		t.Fatalf("fault = %v, want tear", f.Kind)
	}
	if f.TornBytes < 1 || f.TornBytes >= mem.BlockSize {
		t.Fatalf("TornBytes = %d, want in [1,%d)", f.TornBytes, mem.BlockSize)
	}
	if tail := in.OnWrite(128, mem.CatData); tail.Kind != mem.FaultCut {
		t.Fatalf("post-tear write fault = %v, want cut", tail.Kind)
	}
}

func TestCompletingFlavorsFireOnce(t *testing.T) {
	for _, flavor := range []Flavor{BitFlip, DroppedWrite} {
		in := NewInjector(CrashPlan{Step: 2, Flavor: flavor, Seed: 42})
		var fired int
		for i := 0; i < 8; i++ {
			if f := in.OnWrite(uint64(i*64), mem.CatMAC); f.Kind != mem.FaultNone {
				fired++
				if i != 2 {
					t.Fatalf("%v fired at write %d, want 2", flavor, i)
				}
			}
		}
		if fired != 1 {
			t.Fatalf("%v fired %d times, want 1", flavor, fired)
		}
		if flavor.Interrupting() {
			t.Fatalf("%v claims to be interrupting", flavor)
		}
	}
}

func TestInjectorDeterministicParams(t *testing.T) {
	get := func() mem.Fault {
		in := NewInjector(CrashPlan{Step: 0, Flavor: BitFlip, Seed: 99})
		return in.OnWrite(0, mem.CatData)
	}
	a, b := get(), get()
	if a != b {
		t.Fatalf("same plan produced different faults: %+v vs %+v", a, b)
	}
	in2 := NewInjector(CrashPlan{Step: 0, Flavor: BitFlip, Seed: 100})
	if c := in2.OnWrite(0, mem.CatData); c == a {
		t.Log("different seeds gave the same flip parameters (possible but unlikely)")
	}
}

func TestParseFlavors(t *testing.T) {
	all, err := ParseFlavors("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("ParseFlavors(all) = %v, %v", all, err)
	}
	got, err := ParseFlavors("bit-flip, clean-cut")
	if err != nil || len(got) != 2 || got[0] != BitFlip || got[1] != CleanCut {
		t.Fatalf("ParseFlavors = %v, %v", got, err)
	}
	if _, err := ParseFlavors("nope"); err == nil {
		t.Fatal("unknown flavor did not error")
	}
}

// A flavor selection must survive the flag round-trip: rendering a Flavors
// list and re-parsing it yields the same list.
func TestParseFlavorsRoundTrip(t *testing.T) {
	all := AllFlavors()
	got, err := ParseFlavors(all.String())
	if err != nil {
		t.Fatalf("ParseFlavors(%q): %v", all.String(), err)
	}
	if len(got) != len(all) {
		t.Fatalf("round-trip = %v, want %v", got, all)
	}
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("round-trip[%d] = %v, want %v", i, got[i], all[i])
		}
	}
	sub := Flavors{BitFlip, CleanCut}
	got, err = ParseFlavors(sub.String())
	if err != nil || len(got) != 2 || got[0] != BitFlip || got[1] != CleanCut {
		t.Fatalf("subset round-trip = %v, %v", got, err)
	}
}

// SampleSteps edge cases: a stride larger than the episode still yields the
// boundary steps, and degenerate totals yield nothing.
func TestSampleStepsEdges(t *testing.T) {
	got := SampleSteps(10, 100, 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 9 {
		t.Fatalf("stride>total sample = %v, want [0 9]", got)
	}
	if got := SampleSteps(1, 100, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-step episode = %v, want [0]", got)
	}
	if got := SampleSteps(0, 3, 5); got != nil {
		t.Fatalf("zero-step episode = %v, want nil", got)
	}
	if got := SampleSteps(-4, 1, 0); got != nil {
		t.Fatalf("negative-step episode = %v, want nil", got)
	}
	// A non-positive stride behaves as stride 1.
	if got := SampleSteps(4, 0, 0); len(got) != 4 {
		t.Fatalf("stride 0 sample = %v, want all 4 steps", got)
	}
}

func TestSampleSteps(t *testing.T) {
	if got := SampleSteps(5, 1, 0); len(got) != 5 {
		t.Fatalf("full sample = %v", got)
	}
	got := SampleSteps(100, 7, 0)
	if got[0] != 0 || got[len(got)-1] != 99 {
		t.Fatalf("stride sample missing endpoints: %v", got)
	}
	capped := SampleSteps(100, 1, 10)
	if len(capped) > 10 || capped[0] != 0 || capped[len(capped)-1] != 99 {
		t.Fatalf("capped sample = %v", capped)
	}
	if got := SampleSteps(50, 1, 1); len(got) != 1 {
		t.Fatalf("max=1 sample = %v", got)
	}
	if got := SampleSteps(0, 1, 0); got != nil {
		t.Fatalf("empty episode sample = %v", got)
	}
}

func TestOutcomeContract(t *testing.T) {
	for _, o := range []Outcome{OutcomeRestored, OutcomePartial, OutcomeDetected} {
		if !o.OK() {
			t.Fatalf("%v should satisfy the contract", o)
		}
	}
	for _, o := range []Outcome{OutcomeSilentCorruption, OutcomeInternalError} {
		if o.OK() {
			t.Fatalf("%v should fail the contract", o)
		}
	}
}
