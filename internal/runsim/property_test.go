package runsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// Property: regardless of persistence domain, cache geometry pressure and
// spill traffic, the machine behaves like a flat map from address to
// last-written value.
func TestMachineLinearizesProperty(t *testing.T) {
	domains := []PersistDomain{DomainADR, DomainADRWPQ, DomainBBB, DomainEPD}
	f := func(seed int64, ops []uint16) bool {
		domain := domains[uint64(seed)%uint64(len(domains))]
		m, _, _ := newMachine(t, domain, true)
		rng := rand.New(rand.NewSource(seed))
		golden := make(map[uint64]mem.Block)
		for _, op := range ops {
			addr := (uint64(op) % 512) * 4096 // spans 2MB >> hierarchy
			switch op % 3 {
			case 0:
				var b mem.Block
				b[0] = byte(rng.Uint32()) | 1
				if err := m.Write(addr, b); err != nil {
					return false
				}
				golden[addr] = b
			case 1:
				got, err := m.Read(addr)
				if err != nil {
					return false
				}
				want := golden[addr] // zero block if never written
				if got != want {
					return false
				}
			case 2:
				if err := m.Persist(addr); err != nil {
					return false
				}
			}
		}
		// Final audit.
		for addr, want := range golden {
			got, err := m.Read(addr)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: after any operation sequence, the machine's DirtyBlocks are
// consistent with Golden (same addresses, same values).
func TestDirtyBlocksSubsetOfGoldenProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m, _, _ := newMachine(t, DomainEPD, false)
		for i, op := range ops {
			addr := (uint64(op) % 256) * 4096
			if op%2 == 0 {
				if err := m.Write(addr, mem.Block{0: byte(i + 1)}); err != nil {
					return false
				}
			} else if _, err := m.Read(addr); err != nil {
				return false
			}
		}
		golden := m.Golden()
		for _, db := range m.DirtyBlocks() {
			if golden[db.Addr] != db.Data {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
