// Package runsim simulates the run-time phase of an EPD machine: a
// single-threaded core driving a multi-level write-back cache hierarchy
// over the (optionally secure) NVM. It exists to reproduce the paper's
// motivation (§I, §II-A): with the persistence domain extended over the
// cache hierarchy, persist operations cost nothing, while ADR systems pay
// a full (secure) memory write per durability point — and to produce a
// genuine pre-crash machine state that the drain engines can flush and
// recovery can restore, closing the run/crash/drain/recover loop
// end-to-end.
//
// Model simplifications (documented, deliberate): the core is blocking
// (one access at a time — persist-latency comparisons are per-operation,
// so overlap would scale both sides equally); the hierarchy fills to L1
// and spills downward victim-by-victim (exclusive-style), which preserves
// the traffic structure that matters here — LLC misses and dirty
// write-backs reaching the memory controller.
package runsim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/timeseries"
	"repro/internal/secmem"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// PersistDomain selects where the persistence boundary sits (§II-A).
type PersistDomain int

// Persistence domains.
const (
	// DomainADR: battery backs only the memory-controller write queue; a
	// persist must flush the dirty line to the memory controller, paying
	// the full (secure) write path.
	DomainADR PersistDomain = iota
	// DomainEPD: battery backs the whole cache hierarchy (eADR); a write
	// is durable once it lands in L1, so persists are free.
	DomainEPD
	// DomainADRWPQ: ADR with a battery-backed write-pending queue at the
	// memory controller (the Dolos design point the paper cites): a
	// persist completes once the line is accepted by the WPQ; the secure
	// write retires in the background, and the core stalls only when the
	// queue is full.
	DomainADRWPQ
	// DomainBBB: a small battery-backed buffer attached to the L1 (the BBB
	// design the paper cites): persists complete at L1 latency once the
	// buffer accepts the line; entries retire to NVM in the background
	// like the WPQ, but acceptance costs only an L1 access.
	DomainBBB
)

// String names the domain.
func (d PersistDomain) String() string {
	switch d {
	case DomainEPD:
		return "EPD"
	case DomainADRWPQ:
		return "ADR+WPQ"
	case DomainBBB:
		return "BBB"
	default:
		return "ADR"
	}
}

// Config parameterises the machine.
type Config struct {
	Hierarchy hierarchy.Config
	Domain    PersistDomain
	ClockHz   int64
	// WPQEntries is the battery-backed write-pending-queue capacity for
	// DomainADRWPQ (0 defaults to 64, a typical WPQ depth).
	WPQEntries int
}

// Stats aggregates run-time events.
type Stats struct {
	Reads    int64
	Writes   int64
	Persists int64

	HitsPerLevel  []int64
	MissesToMem   int64 // LLC misses served by memory
	Writebacks    int64 // dirty LLC victims written to memory
	PersistFlush  int64 // ADR persist-triggered flushes
	PersistElided int64 // persists that were free (EPD, or already clean)
	WPQStalls     int64 // persists that stalled on a full write-pending queue

	Time sim.Time // total simulated execution time
}

// Machine is the run-time simulator.
type Machine struct {
	cfg    Config
	levels []*cache.Cache
	lat    []sim.Time

	// contents holds the current plaintext of every line cached anywhere
	// in the hierarchy, dirty or clean. Clean lines cannot be re-read from
	// raw NVM on a hit: under a secure memory path the NVM holds
	// ciphertext, and the plaintext view lives in the (trusted) hierarchy.
	contents map[uint64]mem.Block

	sec *secmem.Controller // nil for a non-secure machine
	nvm *mem.Controller

	// wpq holds the background-retire completion times of accepted
	// write-pending-queue entries (DomainADRWPQ).
	wpq    []sim.Time
	wpqCap int

	now   sim.Time
	stats Stats

	metrics *obs.Registry
	mLabels []string
	tl      *timeline.Recorder
	tsOps   *timeseries.Series // ops retired per sim-time window (nil = off)
}

// SetMetrics attaches the machine to a metrics registry (nil detaches). The
// extra labels (alternating key, value — e.g. "domain", "EPD") are applied
// to every series the machine publishes. The underlying controllers attach
// via their own SetMetrics.
func (m *Machine) SetMetrics(reg *obs.Registry, labels ...string) {
	m.metrics = reg
	m.mLabels = labels
}

// SetTimeline hands the machine the recorder its controllers are attached
// to, so Run can stamp the run phase onto recorded events (nil detaches).
func (m *Machine) SetTimeline(rec *timeline.Recorder) {
	m.tl = rec
}

// SetTimeseries attaches a windowed time-series sampler (nil detaches):
// Run then records operations retired per sim-time window under
// horus_ts_run_ops. The extra labels (e.g. "domain", "EPD") are applied to
// the series. One pointer check per op when detached.
func (m *Machine) SetTimeseries(ts *timeseries.Sampler, labels ...string) {
	if ts == nil {
		m.tsOps = nil
		return
	}
	m.tsOps = ts.Counter("horus_ts_run_ops", labels...)
}

// PublishMetrics snapshots the run-time counters into the attached registry
// as gauges, and asks the memory controllers to publish their occupancy for
// the "run" phase. No-op when no registry is attached.
func (m *Machine) PublishMetrics() {
	reg := m.metrics
	if reg == nil {
		return
	}
	s := m.Stats()
	reg.SetHelp("horus_run_ops", "Run-time operations executed, by kind.")
	reg.SetHelp("horus_run_time_ps", "Simulated run-time execution time, picoseconds.")
	reg.SetHelp("horus_run_persist_flushes", "Persist barriers that flushed dirty lines to the memory controller.")
	reg.SetHelp("horus_run_persist_elided", "Persist barriers elided because the target lines were already clean.")
	reg.SetHelp("horus_run_wpq_stalls", "Run-time stalls waiting for write-pending-queue capacity.")
	reg.SetHelp("horus_run_misses_to_mem", "Cache misses that reached the memory controller at run time.")
	reg.SetHelp("horus_run_writebacks", "Dirty-line writebacks issued to the memory controller at run time.")
	reg.SetHelp("horus_run_cache_hits", "Run-time cache hits, by hierarchy level.")
	lbl := func(extra ...string) []string { return append(extra, m.mLabels...) }
	reg.Gauge("horus_run_ops", lbl("kind", "read")...).Set(float64(s.Reads))
	reg.Gauge("horus_run_ops", lbl("kind", "write")...).Set(float64(s.Writes))
	reg.Gauge("horus_run_ops", lbl("kind", "persist")...).Set(float64(s.Persists))
	reg.Gauge("horus_run_persist_flushes", lbl()...).Set(float64(s.PersistFlush))
	reg.Gauge("horus_run_persist_elided", lbl()...).Set(float64(s.PersistElided))
	reg.Gauge("horus_run_wpq_stalls", lbl()...).Set(float64(s.WPQStalls))
	reg.Gauge("horus_run_misses_to_mem", lbl()...).Set(float64(s.MissesToMem))
	reg.Gauge("horus_run_writebacks", lbl()...).Set(float64(s.Writebacks))
	reg.Gauge("horus_run_time_ps", lbl()...).Set(float64(s.Time))
	for i, hits := range s.HitsPerLevel {
		reg.Gauge("horus_run_cache_hits", lbl("level", m.cfg.Hierarchy.Levels[i].Name)...).Set(float64(hits))
	}
	m.nvm.PublishMetrics("run", m.now)
	if m.sec != nil {
		m.sec.PublishMetrics("run", m.now)
	}
}

// New builds a machine over the given memory system. sec may be nil for a
// non-secure machine; nvm is required.
func New(cfg Config, sec *secmem.Controller, nvm *mem.Controller) *Machine {
	if nvm == nil {
		panic("runsim: nvm required")
	}
	if len(cfg.Hierarchy.Levels) == 0 {
		panic("runsim: hierarchy required")
	}
	if cfg.ClockHz == 0 {
		cfg.ClockHz = 4_000_000_000
	}
	clk := sim.NewClock(cfg.ClockHz)
	m := &Machine{
		cfg:      cfg,
		contents: make(map[uint64]mem.Block),
		sec:      sec,
		nvm:      nvm,
	}
	for _, lc := range cfg.Hierarchy.Levels {
		m.levels = append(m.levels, cache.New(lc.Name, lc.SizeBytes, lc.Ways, mem.BlockSize))
		lat := lc.LatencyCycle
		if lat <= 0 {
			lat = 4
		}
		m.lat = append(m.lat, clk.Cycles(int64(lat)))
	}
	m.stats.HitsPerLevel = make([]int64, len(m.levels))
	m.wpqCap = cfg.WPQEntries
	if m.wpqCap <= 0 {
		m.wpqCap = 64
	}
	return m
}

// Stats returns a copy of the counters with the current time.
func (m *Machine) Stats() Stats {
	s := m.stats
	s.Time = m.now
	s.HitsPerLevel = append([]int64(nil), m.stats.HitsPerLevel...)
	return s
}

// Now returns the current simulated time.
func (m *Machine) Now() sim.Time { return m.now }

// Secure reports whether memory traffic goes through the secure path.
func (m *Machine) Secure() bool { return m.sec != nil }

// memWrite sends a block to memory through the configured path.
func (m *Machine) memWrite(addr uint64, b mem.Block) error {
	if m.sec != nil {
		done, err := m.sec.WriteBlock(m.now, addr, b)
		if err != nil {
			return err
		}
		m.now = done
		return nil
	}
	m.now = m.nvm.Write(m.now, addr, b, mem.CatData)
	return nil
}

// memRead fetches a block from memory through the configured path.
func (m *Machine) memRead(addr uint64) (mem.Block, error) {
	if m.sec != nil {
		b, done, err := m.sec.ReadBlock(m.now, addr)
		if err != nil {
			return mem.Block{}, err
		}
		m.now = done
		return b, nil
	}
	b, done := m.nvm.Read(m.now, addr, mem.CatData)
	m.now = done
	return b, nil
}

// findLevel probes the hierarchy and returns the level holding addr, or -1.
func (m *Machine) findLevel(addr uint64) int {
	for i, c := range m.levels {
		if c.Contains(addr) {
			return i
		}
	}
	return -1
}

// access brings addr into L1 (reading memory if needed), charges latency,
// and returns the line's current value.
func (m *Machine) access(addr uint64) (mem.Block, error) {
	lvl := m.findLevel(addr)
	if lvl >= 0 {
		m.now += m.lat[lvl]
		m.stats.HitsPerLevel[lvl]++
		if lvl == 0 {
			m.levels[0].Touch(addr, false)
			return m.valueOf(addr), nil
		}
		// Promote to L1; the copy leaves the lower level (exclusive style).
		dirty, _ := m.levels[lvl].Invalidate(addr)
		val := m.valueOf(addr)
		if err := m.fillL1(addr, dirty, val); err != nil {
			return mem.Block{}, err
		}
		return val, nil
	}
	// Miss to memory.
	m.now += m.lat[len(m.lat)-1] // traversal cost to the miss point
	m.stats.MissesToMem++
	val, err := m.memRead(addr)
	if err != nil {
		return mem.Block{}, err
	}
	if err := m.fillL1(addr, false, val); err != nil {
		return mem.Block{}, err
	}
	return val, nil
}

// valueOf returns the plaintext of a line cached in the hierarchy.
func (m *Machine) valueOf(addr uint64) mem.Block {
	b, ok := m.contents[addr]
	if !ok {
		panic("runsim: cached line without tracked plaintext")
	}
	return b
}

// fillL1 inserts addr into L1 and spills victims down the hierarchy.
func (m *Machine) fillL1(addr uint64, dirty bool, val mem.Block) error {
	m.contents[addr] = val
	ev, evicted := m.levels[0].Insert(addr, dirty)
	level := 1
	for evicted {
		if level >= len(m.levels) {
			// Victim leaves the hierarchy.
			val := m.contents[ev.Addr]
			delete(m.contents, ev.Addr)
			if ev.Dirty {
				m.stats.Writebacks++
				if err := m.memWrite(ev.Addr, val); err != nil {
					return err
				}
			}
			return nil
		}
		if m.levels[level].Contains(ev.Addr) {
			// Lower level already holds the line (stale copy): refresh it.
			if ev.Dirty {
				m.levels[level].Touch(ev.Addr, true)
			}
			return nil
		}
		ev, evicted = m.levels[level].Insert(ev.Addr, ev.Dirty)
		level++
	}
	return nil
}

// Read performs a load.
func (m *Machine) Read(addr uint64) (mem.Block, error) {
	m.stats.Reads++
	return m.access(addr)
}

// Write performs a store: the line is brought to L1 and dirtied.
func (m *Machine) Write(addr uint64, val mem.Block) error {
	m.stats.Writes++
	if _, err := m.access(addr); err != nil {
		return err
	}
	m.contents[addr] = val
	m.levels[0].Touch(addr, true)
	return nil
}

// Persist makes the most recent write to addr durable. Under EPD this is
// free — the cache hierarchy is the persistence domain. Under plain ADR
// the dirty line must be flushed through the (secure) memory path
// synchronously. Under ADR+WPQ the line enters the battery-backed
// write-pending queue and the secure write retires in the background; the
// core stalls only when the queue is full.
func (m *Machine) Persist(addr uint64) error {
	m.stats.Persists++
	if m.cfg.Domain == DomainEPD {
		m.stats.PersistElided++
		return nil
	}
	lvl := m.findLevel(addr)
	if lvl < 0 || !m.levels[lvl].IsDirty(addr) {
		m.stats.PersistElided++ // already durable
		return nil
	}
	// The line stays cached (clean) with its plaintext; only the NVM copy
	// is refreshed.
	val := m.contents[addr]
	m.levels[lvl].Clean(addr)
	m.stats.PersistFlush++
	if m.cfg.Domain != DomainADRWPQ && m.cfg.Domain != DomainBBB {
		return m.memWrite(addr, val)
	}
	// Buffered path (WPQ / BBB): retire already-completed entries, stall
	// if still full, then accept the line (durable from this instant —
	// the buffer is battery-backed) and issue the background secure write.
	live := m.wpq[:0]
	for _, done := range m.wpq {
		if done > m.now {
			live = append(live, done)
		}
	}
	m.wpq = live
	if len(m.wpq) >= m.wpqCap {
		m.stats.WPQStalls++
		oldest := m.wpq[0]
		for _, d := range m.wpq {
			if d < oldest {
				oldest = d
			}
		}
		m.now = sim.MaxTime(m.now, oldest)
		live = m.wpq[:0]
		for _, done := range m.wpq {
			if done > m.now {
				live = append(live, done)
			}
		}
		m.wpq = live
	}
	start := m.now
	var done sim.Time
	if m.sec != nil {
		d, err := m.sec.WriteBlock(start, addr, val)
		if err != nil {
			return err
		}
		done = d
	} else {
		done = m.nvm.Write(start, addr, val, mem.CatData)
	}
	m.wpq = append(m.wpq, done)
	// The core only pays the buffer-insertion latency: LLC traversal for
	// the memory-controller WPQ, a single L1 access for BBB.
	if m.cfg.Domain == DomainBBB {
		m.now = start + m.lat[0]
	} else {
		m.now = start + m.lat[len(m.lat)-1]
	}
	return nil
}

// Run executes a workload stream to completion.
func (m *Machine) Run(s *workload.Stream) error {
	// Stamp directly on the recorder rather than via nvm.MarkStage: stage
	// marks also reach fault injectors, and the torture harness counts them.
	m.tl.SetStage("run")
	span := m.metrics.StartSpan("run", int64(m.now))
	defer func() {
		span.EndAt(int64(m.now))
		m.PublishMetrics()
	}()
	for i, op := range s.Ops {
		var err error
		switch op.Kind {
		case workload.OpRead:
			_, err = m.Read(op.Addr)
		case workload.OpWrite:
			var v mem.Block
			v[0] = byte(i)
			v[1] = byte(op.Addr >> 6)
			err = m.Write(op.Addr, v)
		case workload.OpPersist:
			err = m.Persist(op.Addr)
		default:
			err = fmt.Errorf("runsim: unknown op kind %v", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("runsim: op %d (%v %#x): %w", i, op.Kind, op.Addr, err)
		}
		if m.tsOps != nil {
			m.tsOps.Record(int64(m.now), 1)
		}
	}
	return nil
}

// DirtyBlocks snapshots the hierarchy's dirty lines for an EPD drain, in
// deterministic scan order.
func (m *Machine) DirtyBlocks() []hierarchy.DirtyBlock {
	var out []hierarchy.DirtyBlock
	for _, c := range m.levels {
		for _, addr := range c.DirtyLines() {
			out = append(out, hierarchy.DirtyBlock{Addr: addr, Data: m.contents[addr]})
		}
	}
	return out
}

// Golden returns the current plaintext of every line cached in the
// hierarchy (dirty or clean), for end-to-end verification.
func (m *Machine) Golden() map[uint64]mem.Block {
	out := make(map[uint64]mem.Block, len(m.contents))
	for a, b := range m.contents {
		out[a] = b
	}
	return out
}

// Crash drops the volatile hierarchy (after a drain has captured it). The
// WPQ is battery-backed and its entries were functionally durable at
// acceptance, so it simply empties.
func (m *Machine) Crash() {
	for _, c := range m.levels {
		c.InvalidateAll()
	}
	m.contents = make(map[uint64]mem.Block)
	m.wpq = nil
}
