package runsim

import (
	"testing"

	"repro/internal/bmt"
	"repro/internal/cme"
	"repro/internal/hierarchy"
	"repro/internal/mem"
	"repro/internal/secmem"
	"repro/internal/workload"
)

func smallHierarchy() hierarchy.Config {
	return hierarchy.Config{Levels: []hierarchy.LevelConfig{
		{Name: "L1", SizeBytes: 2 << 10, Ways: 2, LatencyCycle: 2},
		{Name: "L2", SizeBytes: 8 << 10, Ways: 4, LatencyCycle: 20},
		{Name: "LLC", SizeBytes: 32 << 10, Ways: 8, LatencyCycle: 32},
	}}
}

func newMachine(t testing.TB, domain PersistDomain, secure bool) (*Machine, *mem.Controller, *secmem.Controller) {
	t.Helper()
	nvm := mem.NewController(mem.DefaultConfig())
	var sec *secmem.Controller
	if secure {
		lay := bmt.NewLayout(bmt.Config{DataSize: 16 << 20, CHVCapacity: 1024, VaultBlocks: 8192})
		scfg := secmem.DefaultConfig()
		scfg.CounterCacheBytes = 4 << 10
		scfg.MACCacheBytes = 8 << 10
		scfg.TreeCacheBytes = 4 << 10
		sec = secmem.New(scfg, lay, cme.NewEngine(5), nvm)
	}
	return New(Config{Hierarchy: smallHierarchy(), Domain: domain}, sec, nvm), nvm, sec
}

func TestWriteReadThroughHierarchy(t *testing.T) {
	m, _, _ := newMachine(t, DomainEPD, false)
	want := mem.Block{0: 0xCD}
	if err := m.Write(0x1000, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("read-after-write mismatch (cached)")
	}
	st := m.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitsPerLevel[0] == 0 {
		t.Error("L1 hit not recorded")
	}
}

func TestCapacitySpillsToMemoryAndBack(t *testing.T) {
	m, nvm, _ := newMachine(t, DomainEPD, false)
	// Write far more blocks than the whole hierarchy holds.
	total := (2<<10 + 8<<10 + 32<<10) / 64
	n := total * 3
	for i := 0; i < n; i++ {
		if err := m.Write(uint64(i)*64, mem.Block{0: byte(i), 1: byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Writebacks == 0 {
		t.Fatal("no dirty write-backs despite capacity pressure")
	}
	if nvm.TotalWrites() == 0 {
		t.Fatal("memory never written")
	}
	// Re-read everything: values must be the last written, whether they
	// come from the hierarchy or from memory.
	for i := 0; i < n; i++ {
		got, err := m.Read(uint64(i) * 64)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("block %d corrupted on spill path", i)
		}
	}
	if m.Stats().MissesToMem == 0 {
		t.Error("re-read never missed to memory")
	}
}

func TestSecureMachineEncryptsSpilledData(t *testing.T) {
	m, nvm, _ := newMachine(t, DomainEPD, true)
	total := (2<<10 + 8<<10 + 32<<10) / 64
	for i := 0; i < total*2; i++ {
		if err := m.Write(uint64(i)*4096, mem.Block{0: 0x77}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Writebacks == 0 {
		t.Skip("no write-backs; enlarge workload")
	}
	// Find a written-back block: its NVM image must not be plaintext.
	found := false
	for i := 0; i < total*2; i++ {
		addr := uint64(i) * 4096
		b := nvm.PeekRead(addr)
		if !b.IsZero() {
			found = true
			if b == (mem.Block{0: 0x77}) {
				t.Fatal("secure machine wrote plaintext to NVM")
			}
		}
	}
	if !found {
		t.Fatal("no block reached NVM")
	}
}

func TestPersistCostEPDvsADR(t *testing.T) {
	// Cache-resident transactional working set: the case EPD is built for
	// (§II-A) — persists are the only reason to touch the memory at all.
	run := func(domain PersistDomain) Stats {
		m, _, _ := newMachine(t, domain, true)
		s := workload.TxLog(workload.Config{Ops: 3000, WorkingSet: 24 << 10, Seed: 4}, 2, 4)
		if err := m.Run(s); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	adr, epd := run(DomainADR), run(DomainEPD)
	if epd.PersistFlush != 0 {
		t.Error("EPD performed persist flushes")
	}
	if adr.PersistFlush == 0 {
		t.Error("ADR performed no persist flushes")
	}
	if epd.Time >= adr.Time {
		t.Errorf("EPD (%v) not faster than ADR (%v) on a persist-heavy workload", epd.Time, adr.Time)
	}
	// The paper's motivation: the gap should be large for persist-heavy
	// transactional workloads with cache-resident data.
	if ratio := float64(adr.Time) / float64(epd.Time); ratio < 5 {
		t.Errorf("ADR/EPD ratio %.2f too small", ratio)
	}
}

func TestWPQDomainBetweenADRAndEPD(t *testing.T) {
	// The battery-backed WPQ (Dolos design point) should land between
	// plain ADR and EPD on a persist-heavy workload.
	times := map[PersistDomain]Stats{}
	for _, d := range []PersistDomain{DomainADR, DomainADRWPQ, DomainEPD} {
		m, _, _ := newMachine(t, d, true)
		s := workload.TxLog(workload.Config{Ops: 4000, WorkingSet: 24 << 10, Seed: 4}, 2, 4)
		if err := m.Run(s); err != nil {
			t.Fatal(err)
		}
		times[d] = m.Stats()
	}
	adr, wpq, epd := times[DomainADR].Time, times[DomainADRWPQ].Time, times[DomainEPD].Time
	if !(epd < wpq && wpq < adr) {
		t.Errorf("ordering broken: EPD=%v WPQ=%v ADR=%v", epd, wpq, adr)
	}
}

func TestBBBBetweenWPQAndEPD(t *testing.T) {
	// BBB accepts persists at L1 latency, so it should be at least as fast
	// as the memory-controller WPQ and no faster than EPD.
	times := map[PersistDomain]Stats{}
	for _, d := range []PersistDomain{DomainADRWPQ, DomainBBB, DomainEPD} {
		m, _, _ := newMachine(t, d, true)
		s := workload.TxLog(workload.Config{Ops: 4000, WorkingSet: 24 << 10, Seed: 4}, 2, 4)
		if err := m.Run(s); err != nil {
			t.Fatal(err)
		}
		times[d] = m.Stats()
	}
	if times[DomainBBB].Time > times[DomainADRWPQ].Time {
		t.Errorf("BBB (%v) slower than WPQ (%v)", times[DomainBBB].Time, times[DomainADRWPQ].Time)
	}
	if times[DomainBBB].Time < times[DomainEPD].Time {
		t.Errorf("BBB (%v) faster than EPD (%v)", times[DomainBBB].Time, times[DomainEPD].Time)
	}
	if DomainBBB.String() != "BBB" {
		t.Error("name wrong")
	}
}

func TestWPQStallsWhenSaturated(t *testing.T) {
	nvm := mem.NewController(mem.DefaultConfig())
	lay := bmt.NewLayout(bmt.Config{DataSize: 16 << 20, CHVCapacity: 1024, VaultBlocks: 8192})
	scfg := secmem.DefaultConfig()
	scfg.CounterCacheBytes = 4 << 10
	scfg.MACCacheBytes = 8 << 10
	scfg.TreeCacheBytes = 4 << 10
	sec := secmem.New(scfg, lay, cme.NewEngine(5), nvm)
	m := New(Config{Hierarchy: smallHierarchy(), Domain: DomainADRWPQ, WPQEntries: 2}, sec, nvm)
	// Cache-resident burst: writes are L1 hits (sub-nanosecond), so
	// persists arrive far faster than the ~microsecond secure write path
	// retires them and the 2-entry queue must stall.
	addrs := []uint64{0, 4096, 8192, 12288}
	rounds := 16
	for r := 0; r < rounds; r++ {
		for _, addr := range addrs {
			if err := m.Write(addr, mem.Block{0: byte(r + 1)}); err != nil {
				t.Fatal(err)
			}
			if err := m.Persist(addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := m.Stats()
	if st.WPQStalls == 0 {
		t.Error("a 2-entry WPQ never stalled under a persist burst")
	}
	if st.PersistFlush != int64(rounds*len(addrs)) {
		t.Errorf("persist flushes = %d, want %d", st.PersistFlush, rounds*len(addrs))
	}
	// All persisted data must be durable in NVM with the final values.
	for _, addr := range addrs {
		b := nvm.PeekRead(addr)
		if b.IsZero() {
			t.Fatalf("persisted block %#x not durable", addr)
		}
	}
}

func TestADRPersistIsDurable(t *testing.T) {
	m, nvm, _ := newMachine(t, DomainADR, false)
	want := mem.Block{0: 0x3C}
	if err := m.Write(0x2000, want); err != nil {
		t.Fatal(err)
	}
	if err := m.Persist(0x2000); err != nil {
		t.Fatal(err)
	}
	if nvm.PeekRead(0x2000) != want {
		t.Fatal("persist did not reach NVM")
	}
	// A second persist of the now-clean line is elided.
	before := m.Stats().PersistFlush
	if err := m.Persist(0x2000); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.PersistFlush != before || st.PersistElided == 0 {
		t.Error("clean-line persist not elided")
	}
}

func TestRunAllWorkloads(t *testing.T) {
	cfg := workload.Config{Ops: 2000, WorkingSet: 256 << 10, Seed: 9, PersistPercent: 10}
	streams := []*workload.Stream{
		workload.Sequential(cfg),
		workload.Uniform(cfg),
		workload.Zipf(cfg, 1.3),
		workload.KVStore(cfg, 4),
		workload.TxLog(cfg, 2, 3),
		workload.Graph(cfg, 3),
	}
	for _, s := range streams {
		t.Run(s.Name, func(t *testing.T) {
			m, _, _ := newMachine(t, DomainEPD, true)
			if err := m.Run(s); err != nil {
				t.Fatal(err)
			}
			st := m.Stats()
			if st.Time <= 0 {
				t.Error("no simulated time elapsed")
			}
			r, w, p := s.Stats()
			if st.Reads != int64(r) || st.Writes != int64(w) || st.Persists != int64(p) {
				t.Error("op counts disagree with stream stats")
			}
		})
	}
}

func TestDirtyBlocksMatchContents(t *testing.T) {
	m, _, _ := newMachine(t, DomainEPD, false)
	for i := 0; i < 100; i++ {
		if err := m.Write(uint64(i)*64, mem.Block{0: byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	golden := m.Golden()
	blocks := m.DirtyBlocks()
	if len(blocks) == 0 {
		t.Fatal("no dirty blocks")
	}
	for _, b := range blocks {
		want, ok := golden[b.Addr]
		if !ok || b.Data != want {
			t.Fatalf("dirty block %#x inconsistent with golden state", b.Addr)
		}
	}
	m.Crash()
	if len(m.DirtyBlocks()) != 0 {
		t.Error("crash left dirty blocks")
	}
}

func TestZeroLatencyLevelsDefaulted(t *testing.T) {
	cfg := Config{Hierarchy: hierarchy.Config{Levels: []hierarchy.LevelConfig{
		{Name: "only", SizeBytes: 1 << 10, Ways: 2}, // LatencyCycle 0
	}}}
	nvm := mem.NewController(mem.DefaultConfig())
	m := New(cfg, nil, nvm)
	if err := m.Write(0, mem.Block{}); err != nil {
		t.Fatal(err)
	}
	if m.Now() <= 0 {
		t.Error("defaulted latency did not advance time")
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil nvm":   func() { New(Config{Hierarchy: smallHierarchy()}, nil, nil) },
		"no levels": func() { New(Config{}, nil, mem.NewController(mem.DefaultConfig())) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
