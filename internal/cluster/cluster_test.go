package cluster

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
)

func TestGenerateHeterogeneity(t *testing.T) {
	f, err := Generate(GenerateOptions{Machines: 16, Racks: 4, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("generated fleet invalid: %v", err)
	}
	schemes := map[core.Scheme]bool{}
	llcs := map[int]bool{}
	banks := map[int]bool{}
	workloads := map[string]bool{}
	racks := map[int]int{}
	for _, m := range f.Machines {
		schemes[m.Scheme] = true
		llcs[m.LLCBytes] = true
		banks[m.Banks] = true
		workloads[m.Workload] = true
		racks[m.Rack]++
	}
	if len(schemes) != 4 {
		t.Errorf("16 machines cover %d schemes, want 4", len(schemes))
	}
	if len(llcs) != 3 || len(banks) != 3 || len(workloads) != 4 {
		t.Errorf("attribute coverage: llcs=%d banks=%d workloads=%d, want 3/3/4", len(llcs), len(banks), len(workloads))
	}
	for r := 0; r < 4; r++ {
		if racks[r] != 4 {
			t.Errorf("rack %d has %d machines, want 4", r, racks[r])
		}
	}
}

// TestGenerateSeedStability pins the per-machine seed derivation: every
// machine's stream seed is sweep.DeriveSeed(base, ID) — collision-free
// across a large fleet and independent of how many machines are generated
// (order-independence: a prefix fleet has byte-identical specs).
func TestGenerateSeedStability(t *testing.T) {
	big, err := Generate(GenerateOptions{Machines: 4096, Racks: 8, Seed: 42})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	seen := map[int64]int{}
	for _, m := range big.Machines {
		if m.Seed != sweep.DeriveSeed(42, m.ID) {
			t.Fatalf("machine %d seed %#x is not DeriveSeed(42, %d)", m.ID, m.Seed, m.ID)
		}
		if prev, dup := seen[m.Seed]; dup {
			t.Fatalf("seed collision: machines %d and %d both got %#x", prev, m.ID, m.Seed)
		}
		seen[m.Seed] = m.ID
	}
	small, err := Generate(GenerateOptions{Machines: 16, Racks: 8, Seed: 42})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !reflect.DeepEqual(small.Machines, big.Machines[:16]) {
		t.Error("fleet prefix differs: generation is not order-independent")
	}
}

func TestGenerateRejectsTyped(t *testing.T) {
	cases := []GenerateOptions{
		{Machines: 0, Racks: 1},
		{Machines: 4, Racks: 0},
		{Machines: 4, Racks: 5},
		{Machines: 5000, Racks: 1},
		{Machines: 4, Racks: 2, Schemes: []core.Scheme{core.NonSecure}},
	}
	for i, opts := range cases {
		_, err := Generate(opts)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("case %d: got %v, want *ConfigError", i, err)
		}
	}
}

func TestFleetValidateTyped(t *testing.T) {
	base := func() *Fleet {
		f, err := Generate(GenerateOptions{Machines: 4, Racks: 2, Seed: 1})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return f
	}
	mutations := []func(*Fleet){
		func(f *Fleet) { f.Machines = nil },
		func(f *Fleet) { f.Racks = 0 },
		func(f *Fleet) { f.Machines[2].ID = 7 },
		func(f *Fleet) { f.Machines[1].Rack = 9 },
		func(f *Fleet) { f.Machines[0].Scheme = core.NonSecure },
		func(f *Fleet) { f.Machines[3].LLCBytes = 16 },
		func(f *Fleet) { f.Machines[3].Banks = 0 },
		func(f *Fleet) { f.Machines[2].BatteryCm3 = -1 },
		func(f *Fleet) { f.Machines[1].Workload = "" },
	}
	for i, mutate := range mutations {
		f := base()
		mutate(f)
		var ce *ConfigError
		if err := f.Validate(); !errors.As(err, &ce) {
			t.Errorf("mutation %d: got %v, want *ConfigError", i, err)
		}
	}
	var nilFleet *Fleet
	var ce *ConfigError
	if err := nilFleet.Validate(); !errors.As(err, &ce) {
		t.Error("nil fleet must fail typed")
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("2ms:5ms:all; 12ms:1ms:0,2", 4)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(s) != 2 {
		t.Fatalf("parsed %d outages, want 2", len(s))
	}
	if s[0].AtPs != 2e9 || s[0].DurationPs != 5e9 || s[0].Racks != nil {
		t.Errorf("outage 0: %+v", s[0])
	}
	if s[1].AtPs != 12e9 || !reflect.DeepEqual(s[1].Racks, []int{0, 2}) {
		t.Errorf("outage 1: %+v", s[1])
	}
	if !s.DarkAt(1, 3e9) || s.DarkAt(1, 8e9) {
		t.Error("DarkAt windows wrong")
	}
	// Rack 1 is dark only during the site-wide outage.
	if s.DarkAt(1, 12_500_000_000) {
		t.Error("rack 1 dark during rack-0,2 outage")
	}

	bad := []string{
		"", "nonsense", "2ms:5ms", "x:5ms:all", "2ms:y:all", "2ms:5ms:9",
		"2ms:5ms:2,1,1", "2ms:5ms:all;3ms:1ms:all", "-2ms:5ms:all",
	}
	for _, spec := range bad {
		var se *ScheduleError
		if _, err := ParseSchedule(spec, 4); !errors.As(err, &se) {
			t.Errorf("ParseSchedule(%q): got %v, want *ScheduleError", spec, err)
		}
	}
}

func TestScheduleValidateOverlap(t *testing.T) {
	s := Schedule{{AtPs: 0, DurationPs: 100}, {AtPs: 50, DurationPs: 10, Racks: []int{1}}}
	var se *ScheduleError
	if err := s.Validate(2); !errors.As(err, &se) {
		t.Errorf("overlapping outages on rack 1: got %v, want *ScheduleError", s.Validate(2))
	}
	// Zero-duration blip at the exact end instant of the previous window
	// still overlaps (the previous outage's restore lands at the same
	// instant); one picosecond later is fine.
	ok := Schedule{{AtPs: 0, DurationPs: 100}, {AtPs: 101, DurationPs: 0}}
	if err := ok.Validate(2); err != nil {
		t.Errorf("sequential outages rejected: %v", err)
	}
}

func TestRouteSessions(t *testing.T) {
	f, err := Generate(GenerateOptions{Machines: 4, Racks: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// No outages: round-robin deals evenly, nothing fails over.
	rs := RouteSessions(f, nil, 100, 1000, RouteRoundRobin, true, 7)
	if rs.Routed != 100 || rs.FailedOver != 0 || rs.Rejected != 0 {
		t.Errorf("round-robin: %+v", rs)
	}
	for id, n := range rs.Sessions {
		if n != 25 {
			t.Errorf("machine %d got %d sessions, want 25", id, n)
		}
	}
	// Least-loaded also balances exactly.
	ll := RouteSessions(f, nil, 100, 1000, RouteLeastLoaded, true, 7)
	for id, n := range ll.Sessions {
		if n != 25 {
			t.Errorf("least-loaded machine %d got %d, want 25", id, n)
		}
	}
	// Hash is deterministic and admits everything when the fleet is up.
	h1 := RouteSessions(f, nil, 100, 1000, RouteHash, true, 7)
	h2 := RouteSessions(f, nil, 100, 1000, RouteHash, true, 7)
	if !reflect.DeepEqual(h1, h2) {
		t.Error("hash routing not deterministic")
	}
	if h1.Total() != 100 {
		t.Errorf("hash admitted %d, want 100", h1.Total())
	}

	// Rack 0 (machines 0 and 2) dark for the whole horizon: failover
	// reroutes onto rack 1, rejection drops.
	dark := Schedule{{AtPs: 0, DurationPs: 1000, Racks: []int{0}}}
	fo := RouteSessions(f, dark, 100, 1000, RouteRoundRobin, true, 7)
	if fo.Sessions[0] != 0 || fo.Sessions[2] != 0 {
		t.Errorf("failover left sessions on dark machines: %v", fo.Sessions)
	}
	if fo.FailedOver != 50 || fo.Routed != 50 || fo.Rejected != 0 {
		t.Errorf("failover stats: %+v", fo)
	}
	rj := RouteSessions(f, dark, 100, 1000, RouteRoundRobin, false, 7)
	if rj.Rejected != 50 || rj.Routed != 50 {
		t.Errorf("reject stats: %+v", rj)
	}
	// Site-wide outage with failover: nowhere to go.
	all := Schedule{{AtPs: 0, DurationPs: 1000}}
	none := RouteSessions(f, all, 10, 1000, RouteHash, true, 7)
	if none.Rejected != 10 {
		t.Errorf("site-wide outage admitted sessions: %+v", none)
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]RoutePolicy{
		"rr": RouteRoundRobin, "round-robin": RouteRoundRobin,
		"hash": RouteHash, "least": RouteLeastLoaded, "least-loaded": RouteLeastLoaded,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus policy")
	}
}

func TestQuantile(t *testing.T) {
	if got := Quantile(nil, 0.99); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
	if got := Quantile([]int64{7}, 0.5); got != 7 {
		t.Errorf("singleton p50 = %d", got)
	}
	vals := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := Quantile(vals, 0.5); got != 50 {
		t.Errorf("p50 = %d, want 50", got)
	}
	if got := Quantile(vals, 0.99); got != 100 {
		t.Errorf("p99 = %d, want 100", got)
	}
	if got := Quantile(vals, 0); got != 10 {
		t.Errorf("p0 = %d, want 10", got)
	}
	if got := Quantile(vals, 1); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	// Quantile must not mutate its input.
	shuffled := []int64{5, 1, 3}
	_ = Quantile(shuffled, 0.5)
	if !reflect.DeepEqual(shuffled, []int64{5, 1, 3}) {
		t.Error("Quantile mutated its input")
	}
}
