package cluster

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// emptyFleetFixtures returns the degenerate inputs the report layer must
// survive: a valid-but-empty result for a zero-machine fleet.
func emptyResult() (*Fleet, *FleetResult) {
	return &Fleet{Racks: 1}, &FleetResult{RackEnergyJ: []float64{0}}
}

func TestSummaryTableEmptyFleet(t *testing.T) {
	f, res := emptyResult()
	m := Summarize(f, res)
	out := SummaryTable(f, LoopConfig{}, m, RouteStats{}).String()
	if !strings.Contains(out, "empty fleet") {
		t.Errorf("empty-fleet note missing:\n%s", out)
	}
}

func TestSummaryTableZeroCycles(t *testing.T) {
	f := &Fleet{Racks: 1, Machines: []MachineSpec{{Name: "m00", Workload: "uniform"}}}
	res := &FleetResult{RackEnergyJ: []float64{0}}
	out := SummaryTable(f, LoopConfig{RackPowerW: 100, RecoverySlots: 2}, Summarize(f, res), RouteStats{}).String()
	if !strings.Contains(out, "no outage caught a serving machine") {
		t.Errorf("zero-cycle note missing:\n%s", out)
	}
	if !strings.Contains(out, "100 W") || !strings.Contains(out, "recovery slots") {
		t.Errorf("budget rows missing:\n%s", out)
	}
}

func TestMachineTableSingleMachineAndBatteryFail(t *testing.T) {
	f := testFleet(t, 1, 1)
	runs := flatRuns(1)
	res, err := Run(f, LoopConfig{RackBatteryJ: 1e-9}, runs, Schedule{{AtPs: 0, DurationPs: 100}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := MachineTable(f, runs, res).String()
	if !strings.Contains(out, "m00") || !strings.Contains(out, "restored") {
		t.Errorf("machine row missing:\n%s", out)
	}
	if !strings.Contains(out, "FAIL rack 0") {
		t.Errorf("battery-overdraw note missing:\n%s", out)
	}

	empty, eres := emptyResult()
	eout := MachineTable(empty, nil, eres).String()
	if !strings.Contains(eout, "empty fleet") {
		t.Errorf("empty-fleet note missing:\n%s", eout)
	}
}

func TestStormTableEdges(t *testing.T) {
	_, res := emptyResult()
	if out := StormTable(res).String(); !strings.Contains(out, "no outages scheduled") {
		t.Errorf("no-outage note missing:\n%s", out)
	}

	// A zero-duration storm (blip drained nobody: outage on an empty rack)
	// renders a 0s row rather than dividing by zero anywhere.
	f := &Fleet{Racks: 2, Machines: []MachineSpec{{
		Name: "m00", Scheme: core.HorusSLM, LLCBytes: 256 << 10, Banks: 16, Workload: "uniform",
	}}}
	r, err := Run(f, LoopConfig{}, flatRuns(1), Schedule{{AtPs: 0, DurationPs: 0, Racks: []int{1}}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := StormTable(r).String()
	if !strings.Contains(out, "0s") {
		t.Errorf("zero-duration storm row missing:\n%s", out)
	}
}

func TestStormGanttEdges(t *testing.T) {
	empty, eres := emptyResult()
	if out := StormGantt(empty, eres).String(); !strings.Contains(out, "empty fleet") {
		t.Errorf("empty-fleet note missing:\n%s", out)
	}

	// Zero-length run: one machine, no outages at all.
	f := testFleet(t, 1, 1)
	res, err := Run(f, LoopConfig{}, flatRuns(1), nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out := StormGantt(f, res).String(); !strings.Contains(out, "zero-length run") {
		t.Errorf("zero-length note missing:\n%s", out)
	}

	// Single machine through one outage: the track must show drain,
	// dark-wait and recovery markers.
	res, err = Run(f, LoopConfig{}, flatRuns(1), Schedule{{AtPs: 0, DurationPs: 1000}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := StormGantt(f, res).String()
	for _, marker := range []string{"D", ".", "R"} {
		if !strings.Contains(out, marker) {
			t.Errorf("Gantt missing %q marker:\n%s", marker, out)
		}
	}
}
