package cluster

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// FuzzClusterConfig drives Generate, Validate and the event loop with
// arbitrary knobs: every input either yields a fleet the loop can run to
// completion or a typed *ConfigError — never a panic, never an untyped
// error. Mirrors FuzzRecoverHorus's contract at fleet scope.
func FuzzClusterConfig(f *testing.F) {
	f.Add(16, 4, int64(42), uint8(2), 100, 50, int64(200))
	f.Add(1, 1, int64(0), uint8(0), 0, 0, int64(0))
	f.Add(64, 3, int64(-7), uint8(9), -5, 1, int64(1))
	f.Add(0, 0, int64(1), uint8(1), 10, 10, int64(10))
	f.Fuzz(func(t *testing.T, machines, racks int, seed int64, scheme uint8, powerW, slots int, darkPs int64) {
		fl, err := Generate(GenerateOptions{
			Machines: machines, Racks: racks, Seed: seed,
			Schemes: []core.Scheme{core.Scheme(scheme % 5)},
		})
		if err != nil {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Generate returned untyped error: %v", err)
			}
			return
		}
		if err := fl.Validate(); err != nil {
			t.Fatalf("Generate produced an invalid fleet: %v", err)
		}
		runs := make([]MachineRun, len(fl.Machines))
		for i := range runs {
			runs[i] = MachineRun{
				DrainPs:      int64(10 + (i*7)%90),
				DrainEnergyJ: 1e-9 * float64(1+i%4),
				RecoverPs:    int64(5 + (i*3)%40),
				Outcome:      "restored",
			}
		}
		if darkPs < 0 {
			darkPs = -darkPs
		}
		sched := Schedule{{AtPs: 0, DurationPs: darkPs % 1_000_000}}
		cfg := LoopConfig{RackPowerW: float64(powerW), RecoverySlots: slots}
		res, err := Run(fl, cfg, runs, sched, nil)
		if err != nil {
			t.Fatalf("Run rejected a valid fleet: %v", err)
		}
		// Oracle invariant under fuzz: every machine the outage caught is
		// back serving, with a coherent cycle.
		if len(res.Cycles) != res.Storms[0].Machines {
			t.Fatalf("%d cycles for %d affected machines", len(res.Cycles), res.Storms[0].Machines)
		}
		for _, tl := range res.Timelines {
			if last := tl.Intervals[len(tl.Intervals)-1]; last.Phase != PhaseServe {
				t.Fatalf("machine %d left in %v", tl.Machine, last.Phase)
			}
		}
	})
}

// FuzzOutageSchedule throws arbitrary text at the schedule parser and
// arbitrary windows at the validator: outputs are either valid schedules
// (which the loop then survives) or typed *ScheduleError — never a panic.
func FuzzOutageSchedule(f *testing.F) {
	f.Add("2ms:5ms:all", 4)
	f.Add("0s:0s:0; 1ms:1ms:1,3", 4)
	f.Add("", 1)
	f.Add("x:y:z;;;", 0)
	f.Add("1ns:1ns:all;1ns:1ns:all", 2)
	f.Add("9999999h:1ms:0", 1)
	f.Fuzz(func(t *testing.T, spec string, racks int) {
		if racks < 0 {
			racks = -racks
		}
		racks = racks%8 + 1
		sched, err := ParseSchedule(spec, racks)
		if err != nil {
			var se *ScheduleError
			if !errors.As(err, &se) {
				t.Fatalf("ParseSchedule(%q) returned untyped error: %v", spec, err)
			}
			return
		}
		if err := sched.Validate(racks); err != nil {
			t.Fatalf("parsed schedule fails its own validation: %v", err)
		}
		// A parsed schedule must be runnable on a matching fleet.
		fl, err := Generate(GenerateOptions{Machines: racks, Racks: racks, Seed: 1})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		runs := make([]MachineRun, racks)
		for i := range runs {
			runs[i] = MachineRun{DrainPs: 20, DrainEnergyJ: 1e-9, RecoverPs: 10, Outcome: "restored"}
		}
		if _, err := Run(fl, LoopConfig{RecoverySlots: 1}, runs, sched, nil); err != nil {
			t.Fatalf("Run rejected parsed schedule %q: %v", spec, err)
		}
	})
}
