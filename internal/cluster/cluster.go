// Package cluster models a fleet of Horus machines under a shared clock:
// heterogeneous machine specs (mixed schemes, LLC sizes, bank counts,
// battery volumes, workload shapes), rack-structured outage schedules,
// pluggable request routing with outage-aware admission, and a
// deterministic event loop that plays out rack-level power failures —
// simultaneous drains competing for a shared rack power budget, then a
// recovery storm gated by fleet-wide recovery slots.
//
// The package follows the repo's measure-then-schedule split: per-machine
// drain and recovery durations are measured independently (the root
// package runs each machine as a sweep episode, so measurements are
// byte-identical at any worker count), and the event loop then plays the
// fleet-level contention out serially from those measured durations. The
// loop itself performs no simulation and no floating-point scheduling
// decisions beyond power-budget sums, so a fleet run is a pure function
// of (fleet, schedule, measurements).
//
// Determinism contract (mirrors internal/sweep): machine iteration is
// always in machine-ID order, rack iteration in ascending rack order,
// event ties break by insertion sequence, and no map is ever ranged over
// where order reaches the output.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sweep"
)

// MachineSpec describes one machine of a simulated fleet. Specs are pure
// data: the root package turns a spec into a full simulated machine, the
// cluster loop only reads the identity fields.
type MachineSpec struct {
	// ID is the machine's index in the fleet, dense from 0. Machine
	// iteration order everywhere in this package is ID order.
	ID int
	// Name labels the machine in reports ("m03").
	Name string
	// Rack is the power domain the machine shares with its rack mates: a
	// rack-level outage cuts power to every machine of the rack, and the
	// rack's drain power budget gates how many of them drain at once.
	Rack int
	// Scheme is the machine's drain design. The recovery oracle requires
	// a secure scheme (NonSecure has no MACs, nothing can be detected),
	// so Validate rejects non-secure members.
	Scheme core.Scheme
	// LLCBytes sizes the machine's last-level cache; the drain length
	// scales with it.
	LLCBytes int
	// Banks is the NVM bank count (drain parallelism inside the machine).
	Banks int
	// BatteryCm3 is the machine's provisioned back-up volume (Table III);
	// it sizes the per-machine hold-up budget the drain races against.
	BatteryCm3 float64
	// Workload names the pre-outage workload shape (kv, txlog, zipf,
	// uniform, sequential, graph).
	Workload string
	// Seed is the machine's private stream seed, derived from the fleet
	// seed via sweep.DeriveSeed(base, ID) so machine streams are
	// collision-free and independent of generation order.
	Seed int64
}

// Fleet is a validated set of machines partitioned into racks.
type Fleet struct {
	Machines []MachineSpec
	// Racks is the number of power domains; machine Rack fields lie in
	// [0, Racks).
	Racks int
}

// ConfigError is the typed error every invalid fleet or generation option
// reports. Fuzzing relies on the contract: cluster configuration never
// panics and never fails with an untyped error.
type ConfigError struct {
	Field  string // the offending field ("Machines", "machine[3].Banks", ...)
	Detail string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("cluster: invalid config: %s: %s", e.Field, e.Detail)
}

// Validate checks the fleet invariants: at least one machine, dense IDs in
// order, racks in range, secure schemes, positive cache/bank sizes.
func (f *Fleet) Validate() error {
	if f == nil {
		return &ConfigError{Field: "Fleet", Detail: "nil fleet"}
	}
	if f.Racks < 1 {
		return &ConfigError{Field: "Racks", Detail: fmt.Sprintf("must be >= 1, got %d", f.Racks)}
	}
	if len(f.Machines) == 0 {
		return &ConfigError{Field: "Machines", Detail: "fleet has no machines"}
	}
	for i, m := range f.Machines {
		field := func(name string) string { return fmt.Sprintf("machine[%d].%s", i, name) }
		if m.ID != i {
			return &ConfigError{Field: field("ID"), Detail: fmt.Sprintf("IDs must be dense and ordered, got %d at index %d", m.ID, i)}
		}
		if m.Rack < 0 || m.Rack >= f.Racks {
			return &ConfigError{Field: field("Rack"), Detail: fmt.Sprintf("rack %d outside [0, %d)", m.Rack, f.Racks)}
		}
		if !m.Scheme.Secure() {
			return &ConfigError{Field: field("Scheme"), Detail: fmt.Sprintf("%v is not secure; the recovery oracle needs MACs to classify outcomes", m.Scheme)}
		}
		if m.LLCBytes < 4<<10 {
			return &ConfigError{Field: field("LLCBytes"), Detail: fmt.Sprintf("LLC must be at least 4 KB, got %d", m.LLCBytes)}
		}
		if m.Banks < 1 || m.Banks > 1024 {
			return &ConfigError{Field: field("Banks"), Detail: fmt.Sprintf("banks must be in [1, 1024], got %d", m.Banks)}
		}
		if m.BatteryCm3 < 0 {
			return &ConfigError{Field: field("BatteryCm3"), Detail: fmt.Sprintf("battery volume must be >= 0, got %g", m.BatteryCm3)}
		}
		if m.Workload == "" {
			return &ConfigError{Field: field("Workload"), Detail: "workload shape must be named"}
		}
	}
	return nil
}

// RackMembers returns the IDs of the machines in rack r, in ID order.
func (f *Fleet) RackMembers(r int) []int {
	var out []int
	for _, m := range f.Machines {
		if m.Rack == r {
			out = append(out, m.ID)
		}
	}
	return out
}

// GenerateOptions parameterises Generate. Zero-valued list fields select
// the defaults below; Machines, Racks and Seed have no defaults.
type GenerateOptions struct {
	Machines int
	Racks    int
	// Seed roots the per-machine seed derivation
	// (sweep.DeriveSeed(Seed, ID)).
	Seed int64
	// Schemes cycles across machines; default: the four secure designs.
	Schemes []core.Scheme
	// LLCBytes cycles across machines; default: 128 KB, 256 KB, 512 KB.
	LLCBytes []int
	// Banks cycles across machines; default: 8, 16, 32.
	Banks []int
	// BatteryCm3 cycles across machines; default: 1e-5, 2e-5, 4e-5 cm^3
	// of SuperCap — test-scale volumes matching TestConfig drain energies.
	BatteryCm3 []float64
	// Workloads cycles across machines; default: uniform, kv, txlog, zipf.
	Workloads []string
}

// Generate builds a heterogeneous fleet: machines are assigned round-robin
// to racks and attribute lists cycle at coprime-ish strides so a 16-machine
// fleet covers every scheme, several LLC sizes, bank counts, battery
// volumes and workload shapes. Generation is a pure function of the
// options: per-machine seeds derive from (Seed, ID), never from a shared
// stream, so adding or reordering machines cannot perturb the others.
func Generate(opts GenerateOptions) (*Fleet, error) {
	if opts.Machines < 1 {
		return nil, &ConfigError{Field: "Machines", Detail: fmt.Sprintf("must be >= 1, got %d", opts.Machines)}
	}
	if opts.Machines > 4096 {
		return nil, &ConfigError{Field: "Machines", Detail: fmt.Sprintf("must be <= 4096, got %d", opts.Machines)}
	}
	if opts.Racks < 1 {
		return nil, &ConfigError{Field: "Racks", Detail: fmt.Sprintf("must be >= 1, got %d", opts.Racks)}
	}
	if opts.Racks > opts.Machines {
		return nil, &ConfigError{Field: "Racks", Detail: fmt.Sprintf("%d racks for %d machines leaves empty racks", opts.Racks, opts.Machines)}
	}
	schemes := opts.Schemes
	if len(schemes) == 0 {
		schemes = []core.Scheme{core.BaseLU, core.BaseEU, core.HorusSLM, core.HorusDLM}
	}
	for i, s := range schemes {
		if !s.Secure() {
			return nil, &ConfigError{Field: fmt.Sprintf("Schemes[%d]", i), Detail: fmt.Sprintf("%v is not secure", s)}
		}
	}
	llcs := opts.LLCBytes
	if len(llcs) == 0 {
		llcs = []int{128 << 10, 256 << 10, 512 << 10}
	}
	banks := opts.Banks
	if len(banks) == 0 {
		banks = []int{8, 16, 32}
	}
	batteries := opts.BatteryCm3
	if len(batteries) == 0 {
		batteries = []float64{1e-5, 2e-5, 4e-5}
	}
	workloads := opts.Workloads
	if len(workloads) == 0 {
		workloads = []string{"uniform", "kv", "txlog", "zipf"}
	}

	f := &Fleet{Racks: opts.Racks, Machines: make([]MachineSpec, opts.Machines)}
	for id := 0; id < opts.Machines; id++ {
		f.Machines[id] = MachineSpec{
			ID:         id,
			Name:       fmt.Sprintf("m%02d", id),
			Rack:       id % opts.Racks,
			Scheme:     schemes[id%len(schemes)],
			LLCBytes:   llcs[id%len(llcs)],
			Banks:      banks[id%len(banks)],
			BatteryCm3: batteries[id%len(batteries)],
			Workload:   workloads[id%len(workloads)],
			Seed:       sweep.DeriveSeed(opts.Seed, id),
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
