package cluster

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/obs/timeseries"
	"repro/internal/sim"
)

// MachineRun is one machine's measured episode: how long its drain takes,
// how much energy the drain draws, and how long its verified recovery
// takes. The root package measures these independently per machine (on
// the sweep worker pool); the event loop plays fleet contention out from
// the measurements, so the loop itself never simulates.
type MachineRun struct {
	// DrainPs is the machine's measured drain time.
	DrainPs int64
	// DrainEnergyJ is the drain's total energy (Table II model).
	DrainEnergyJ float64
	// RecoverPs is the measured verified-recovery time.
	RecoverPs int64
	// Outcome labels the machine's oracle verdict ("restored", "partial",
	// "detected", ...); the loop only forwards it into reports.
	Outcome string
}

// PowerW returns the drain's average power draw — the admission currency
// of the rack power budget. Zero for a zero-length drain.
func (r MachineRun) PowerW() float64 {
	if r.DrainPs <= 0 {
		return 0
	}
	return r.DrainEnergyJ / (sim.Time(r.DrainPs)).Seconds()
}

// LoopConfig bounds the fleet-level contention the loop plays out.
type LoopConfig struct {
	// RackPowerW caps the summed average drain power concurrently drawn
	// per rack (the shared hold-up supply's sustained output). Machines
	// past the cap queue in ID order. <= 0 means uncapped. A machine
	// whose own draw exceeds the cap is still admitted when its rack is
	// otherwise idle — the alternative is deadlock, and a real battery
	// sags rather than refuses.
	RackPowerW float64
	// RackBatteryJ is the rack's shared hold-up energy budget; the loop
	// only accounts against it (RackEnergyJ, BatteryExceeded) — the SLO
	// layer turns the overdraft into a failing exit code.
	RackBatteryJ float64
	// RecoverySlots caps concurrent verified recoveries fleet-wide (the
	// recovery storm's admission control: key-server or attestation
	// bandwidth). <= 0 means uncapped.
	RecoverySlots int
}

// Phase is one state of a machine's outage lifecycle.
type Phase int

const (
	// PhaseServe: powered, serving traffic.
	PhaseServe Phase = iota
	// PhaseDrainWait: power lost, queued for the rack power budget.
	PhaseDrainWait
	// PhaseDrain: draining the persistence domain on battery.
	PhaseDrain
	// PhaseDown: drained, waiting for power to return.
	PhaseDown
	// PhaseRecoverWait: powered again, queued for a recovery slot.
	PhaseRecoverWait
	// PhaseRecover: running verified recovery.
	PhaseRecover
)

func (p Phase) String() string {
	switch p {
	case PhaseServe:
		return "serve"
	case PhaseDrainWait:
		return "drain-wait"
	case PhaseDrain:
		return "drain"
	case PhaseDown:
		return "down"
	case PhaseRecoverWait:
		return "recover-wait"
	case PhaseRecover:
		return "recover"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Interval is one half-open [StartPs, EndPs) span of a machine phase.
type Interval struct {
	Phase   Phase
	StartPs int64
	EndPs   int64
}

// MachineTimeline is one machine's full phase history.
type MachineTimeline struct {
	Machine   int
	Intervals []Interval
}

// Cycle is one machine's passage through one outage: power cut, drain
// queued and executed, dark wait, recovery queued and executed.
type Cycle struct {
	Machine int
	Outage  int
	// Instants on the fleet clock; RestorePs is the outage's, duplicated
	// here so latencies are self-contained.
	OutageAtPs, DrainStartPs, DrainEndPs int64
	RestorePs                            int64
	RecoverStartPs, RecoverEndPs         int64
}

// DrainLatencyPs is power-cut to drain-complete: queueing under the rack
// power budget plus the measured drain.
func (c Cycle) DrainLatencyPs() int64 { return c.DrainEndPs - c.OutageAtPs }

// RecoverLatencyPs is power-back to service-restored: for a blip this
// includes the remaining drain tail, which is exactly the operator-visible
// time-to-service.
func (c Cycle) RecoverLatencyPs() int64 { return c.RecoverEndPs - c.RestorePs }

// StormStat summarises one outage end to end.
type StormStat struct {
	Outage Outage
	// Machines is how many machines the outage actually caught serving;
	// Skipped counts rack members that were still mid-cycle from an
	// earlier outage (nothing new to drain).
	Machines, Skipped int
	// RestorePs is when power returned.
	RestorePs int64
	// DrainMakespanPs is power-cut to last drain complete across the
	// outage's machines (the battery must carry the rack this long).
	DrainMakespanPs int64
	// StormPs is the recovery storm: power-back to the last machine back
	// in service.
	StormPs int64
	// PeakDrains is the maximum number of this outage's machines draining
	// at once (what the rack power budget admitted).
	PeakDrains int
}

// FleetResult is the event loop's verdict.
type FleetResult struct {
	Config LoopConfig
	// Cycles, ordered by (outage, machine).
	Cycles []Cycle
	// Storms, one per scheduled outage in schedule order.
	Storms []StormStat
	// Timelines, one per machine in ID order.
	Timelines []MachineTimeline
	// RackEnergyJ is the cumulative drain energy drawn per rack.
	RackEnergyJ []float64
	// BatteryExceeded lists the racks whose drains overdrew
	// LoopConfig.RackBatteryJ, ascending. Empty when no budget was set.
	BatteryExceeded []int
	// EndPs is the instant the last event settled.
	EndPs int64
}

// event kinds, in tie-break-relevant order of insertion: all outage and
// restore events enter the heap before the loop starts, so at an equal
// instant an outage precedes its own zero-duration restore, and both
// precede any drain/recover completion scheduled later.
const (
	evOutage = iota
	evRestore
	evDrainDone
	evRecoverDone
)

type event struct {
	t    int64
	seq  int
	kind int
	idx  int // outage index (evOutage/evRestore) or machine ID
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// machineState is the loop's per-machine mutable state.
type machineState struct {
	phase     Phase
	phaseFrom int64
	outage    int  // current cycle's outage index, -1 when serving
	powerBack bool // restore fired while still draining (blip)
	cycle     Cycle
	intervals []Interval
}

// Run plays the schedule out over the fleet under a shared clock: at each
// outage the affected racks' serving machines queue for the rack power
// budget and drain for their measured durations; at power restore the
// drained machines queue for fleet-wide recovery slots and recover for
// their measured durations. Every decision iterates machines in ID order
// and racks ascending, and event ties break by insertion order, so the
// result is a pure function of (fleet, cfg, runs, schedule).
//
// ts, when non-nil, receives the fleet-level series on the shared fleet
// clock: machines up / draining / recovering, per-rack energy drawdown,
// and per-outage storm duration.
func Run(f *Fleet, cfg LoopConfig, runs []MachineRun, sched Schedule, ts *timeseries.Sampler) (*FleetResult, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(runs) != len(f.Machines) {
		return nil, &ConfigError{Field: "runs", Detail: fmt.Sprintf("%d runs for %d machines", len(runs), len(f.Machines))}
	}
	for i, r := range runs {
		if r.DrainPs < 0 || r.RecoverPs < 0 || r.DrainEnergyJ < 0 {
			return nil, &ConfigError{Field: fmt.Sprintf("runs[%d]", i), Detail: "measured durations and energy must be >= 0"}
		}
	}
	if err := sched.Validate(f.Racks); err != nil {
		return nil, err
	}

	res := &FleetResult{
		Config:      cfg,
		Storms:      make([]StormStat, len(sched)),
		Timelines:   make([]MachineTimeline, len(f.Machines)),
		RackEnergyJ: make([]float64, f.Racks),
	}
	for i, o := range sched {
		res.Storms[i].Outage = o
		res.Storms[i].RestorePs = o.AtPs + o.DurationPs
	}

	ms := make([]machineState, len(f.Machines))
	for i := range ms {
		ms[i] = machineState{phase: PhaseServe, outage: -1}
	}
	setPhase := func(id int, p Phase, now int64) {
		st := &ms[id]
		if now > st.phaseFrom {
			st.intervals = append(st.intervals, Interval{Phase: st.phase, StartPs: st.phaseFrom, EndPs: now})
		}
		st.phase = p
		st.phaseFrom = now
	}

	var (
		h          eventHeap
		seq        int
		up         = len(f.Machines)
		draining   = 0
		recovering = 0
		// rack drain admission: FIFO queues and admitted power per rack.
		drainQ    = make([][]int, f.Racks)
		rackPower = make([]float64, f.Racks)
		rackBusy  = make([]int, f.Racks) // admitted drains per rack
		// fleet recovery admission.
		recoverQ []int
		// storm bookkeeping: machines of each outage not yet back serving.
		remaining = make([]int, len(sched))
		restored  = make([]bool, len(sched)) // restore event fired
	)
	push := func(t int64, kind, idx int) {
		heap.Push(&h, event{t: t, seq: seq, kind: kind, idx: idx})
		seq++
	}
	for i, o := range sched {
		push(o.AtPs, evOutage, i)
		push(o.AtPs+o.DurationPs, evRestore, i)
	}

	gUp := ts.Gauge("horus_fleet_ts_up")
	gDrain := ts.Gauge("horus_fleet_ts_draining")
	gRecover := ts.Gauge("horus_fleet_ts_recovering")
	sample := func(now int64) {
		gUp.Record(now, float64(up))
		gDrain.Record(now, float64(draining))
		gRecover.Record(now, float64(recovering))
	}

	admitDrains := func(rack int, now int64) {
		for len(drainQ[rack]) > 0 {
			id := drainQ[rack][0]
			w := runs[id].PowerW()
			if cfg.RackPowerW > 0 && rackBusy[rack] > 0 && rackPower[rack]+w > cfg.RackPowerW {
				return
			}
			drainQ[rack] = drainQ[rack][1:]
			st := &ms[id]
			setPhase(id, PhaseDrain, now)
			st.cycle.DrainStartPs = now
			rackPower[rack] += w
			rackBusy[rack]++
			draining++
			s := &res.Storms[st.outage]
			if n := activeOfOutage(ms, st.outage); n > s.PeakDrains {
				s.PeakDrains = n
			}
			push(now+runs[id].DrainPs, evDrainDone, id)
		}
	}
	admitRecoveries := func(now int64) {
		for len(recoverQ) > 0 && (cfg.RecoverySlots <= 0 || recovering < cfg.RecoverySlots) {
			id := recoverQ[0]
			recoverQ = recoverQ[1:]
			st := &ms[id]
			setPhase(id, PhaseRecover, now)
			st.cycle.RecoverStartPs = now
			recovering++
			push(now+runs[id].RecoverPs, evRecoverDone, id)
		}
	}
	finishStorm := func(oi int, now int64) {
		if !restored[oi] || remaining[oi] != 0 {
			return
		}
		s := &res.Storms[oi]
		s.StormPs = now - s.RestorePs
		if s.StormPs < 0 {
			s.StormPs = 0
		}
		ts.Gauge("horus_fleet_ts_storm_ps", "outage", strconv.Itoa(oi)).Record(now, float64(s.StormPs))
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		now := e.t
		if now > res.EndPs {
			res.EndPs = now
		}
		switch e.kind {
		case evOutage:
			o := sched[e.idx]
			racks := o.Racks
			if len(racks) == 0 {
				racks = make([]int, f.Racks)
				for r := range racks {
					racks[r] = r
				}
			}
			for _, r := range racks {
				for _, id := range f.RackMembers(r) {
					st := &ms[id]
					if st.phase != PhaseServe {
						res.Storms[e.idx].Skipped++
						continue
					}
					setPhase(id, PhaseDrainWait, now)
					st.outage = e.idx
					st.powerBack = false
					st.cycle = Cycle{Machine: id, Outage: e.idx, OutageAtPs: now,
						RestorePs: o.AtPs + o.DurationPs}
					drainQ[r] = append(drainQ[r], id)
					res.Storms[e.idx].Machines++
					remaining[e.idx]++
					up--
				}
			}
			for _, r := range racks {
				admitDrains(r, now)
			}
		case evRestore:
			restored[e.idx] = true
			for id := range ms {
				st := &ms[id]
				if st.outage != e.idx {
					continue
				}
				switch st.phase {
				case PhaseDown:
					setPhase(id, PhaseRecoverWait, now)
					recoverQ = append(recoverQ, id)
				case PhaseDrainWait, PhaseDrain:
					st.powerBack = true // blip: recover as soon as the drain lands
				}
			}
			admitRecoveries(now)
			finishStorm(e.idx, now)
		case evDrainDone:
			id := e.idx
			st := &ms[id]
			rack := f.Machines[id].Rack
			rackPower[rack] -= runs[id].PowerW()
			rackBusy[rack]--
			draining--
			st.cycle.DrainEndPs = now
			res.RackEnergyJ[rack] += runs[id].DrainEnergyJ
			ts.Gauge("horus_fleet_ts_rack_energy_j", "rack", strconv.Itoa(rack)).
				Record(now, res.RackEnergyJ[rack])
			if s := &res.Storms[st.outage]; now-s.Outage.AtPs > s.DrainMakespanPs {
				s.DrainMakespanPs = now - s.Outage.AtPs
			}
			if st.powerBack {
				setPhase(id, PhaseRecoverWait, now)
				recoverQ = append(recoverQ, id)
				admitRecoveries(now)
			} else {
				setPhase(id, PhaseDown, now)
			}
			admitDrains(rack, now)
		case evRecoverDone:
			id := e.idx
			st := &ms[id]
			recovering--
			st.cycle.RecoverEndPs = now
			res.Cycles = append(res.Cycles, st.cycle)
			oi := st.outage
			remaining[oi]--
			setPhase(id, PhaseServe, now)
			st.outage = -1
			st.powerBack = false
			up++
			admitRecoveries(now)
			finishStorm(oi, now)
		}
		sample(now)
	}

	// Close the open tail interval of every machine and fix the ordering
	// of the cycle list ((outage, machine), not completion order).
	for id := range ms {
		st := &ms[id]
		// Always appended, even zero-length, so the terminal phase is
		// visible to the oracle (a machine whose recovery lands on the very
		// last event still ends in a Serve interval).
		st.intervals = append(st.intervals,
			Interval{Phase: st.phase, StartPs: st.phaseFrom, EndPs: res.EndPs})
		res.Timelines[id] = MachineTimeline{Machine: id, Intervals: st.intervals}
	}
	sort.SliceStable(res.Cycles, func(i, j int) bool {
		if res.Cycles[i].Outage != res.Cycles[j].Outage {
			return res.Cycles[i].Outage < res.Cycles[j].Outage
		}
		return res.Cycles[i].Machine < res.Cycles[j].Machine
	})
	if cfg.RackBatteryJ > 0 {
		for r, e := range res.RackEnergyJ {
			if e > cfg.RackBatteryJ {
				res.BatteryExceeded = append(res.BatteryExceeded, r)
			}
		}
	}
	return res, nil
}

// activeOfOutage counts the machines of outage oi currently draining.
func activeOfOutage(ms []machineState, oi int) int {
	n := 0
	for i := range ms {
		if ms[i].outage == oi && ms[i].phase == PhaseDrain {
			n++
		}
	}
	return n
}
