package cluster

import (
	"fmt"
	"strings"
)

// RoutePolicy selects how client sessions are assigned to machines before
// the outage: the routing decides each machine's pre-crash load, and load
// decides how much dirty state the machine must drain when its rack goes
// dark.
type RoutePolicy int

const (
	// RouteRoundRobin deals sessions out in machine-ID order.
	RouteRoundRobin RoutePolicy = iota
	// RouteHash routes each session by a splitmix64 hash of its tenant ID
	// (sticky per tenant, uneven under skew).
	RouteHash
	// RouteLeastLoaded routes each session to the machine with the fewest
	// sessions so far (ties break by machine ID).
	RouteLeastLoaded
)

func (p RoutePolicy) String() string {
	switch p {
	case RouteRoundRobin:
		return "round-robin"
	case RouteHash:
		return "hash"
	case RouteLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("RoutePolicy(%d)", int(p))
	}
}

// ParsePolicy resolves a CLI routing-policy name.
func ParsePolicy(name string) (RoutePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "rr", "round-robin", "roundrobin":
		return RouteRoundRobin, nil
	case "hash":
		return RouteHash, nil
	case "least", "least-loaded", "leastloaded":
		return RouteLeastLoaded, nil
	default:
		return 0, fmt.Errorf("unknown routing policy %q (want rr|hash|least)", name)
	}
}

// RouteStats is the outcome of routing a session stream into the fleet.
type RouteStats struct {
	Policy RoutePolicy
	// Sessions[id] counts the sessions each machine admitted.
	Sessions []int
	// Routed counts sessions admitted by their first-choice machine;
	// FailedOver ones were rerouted off a dark rack; Rejected ones
	// arrived during an outage with failover disabled (or with every
	// rack dark) and were dropped.
	Routed, FailedOver, Rejected int
}

// Total returns all admitted sessions.
func (rs RouteStats) Total() int { return rs.Routed + rs.FailedOver }

// RouteSessions assigns n tenant sessions, arriving evenly over
// [0, horizonPs), to the fleet's machines under the policy. Admission
// control is outage-aware: a session whose first-choice machine sits in a
// dark rack at arrival either fails over to the next up machine (in
// policy order) or is rejected when failover is off. The outage windows
// are the scheduled [AtPs, AtPs+DurationPs) spans — routing happens
// before per-machine recovery times are known, so the post-restore
// recovery tail is not modelled as downtime here.
//
// Routing is a pure function of its arguments: tenant IDs derive from
// (seed, session index) via splitmix64, so the assignment is independent
// of any scheduling or map order.
func RouteSessions(f *Fleet, sched Schedule, n int, horizonPs int64, pol RoutePolicy, failover bool, seed int64) RouteStats {
	rs := RouteStats{Policy: pol, Sessions: make([]int, len(f.Machines))}
	if n <= 0 || len(f.Machines) == 0 {
		return rs
	}
	up := func(id int, t int64) bool { return !sched.DarkAt(f.Machines[id].Rack, t) }
	leastLoaded := func() int {
		best := 0
		for id := 1; id < len(rs.Sessions); id++ {
			if rs.Sessions[id] < rs.Sessions[best] {
				best = id
			}
		}
		return best
	}
	for i := 0; i < n; i++ {
		// Arrival instant: even spacing keeps the load profile independent
		// of n's factorisation; tenant identity comes from the seed.
		t := int64(0)
		if horizonPs > 0 {
			t = int64(uint64(horizonPs) * uint64(i) / uint64(n))
		}
		tenant := splitmix64(uint64(seed) + uint64(i)*0x9e3779b97f4a7c15)
		var first int
		switch pol {
		case RouteHash:
			first = int(tenant % uint64(len(f.Machines)))
		case RouteLeastLoaded:
			first = leastLoaded()
		default: // round-robin
			first = i % len(f.Machines)
		}
		switch {
		case up(first, t):
			rs.Sessions[first]++
			rs.Routed++
		case failover:
			// Scan forward from the first choice in ID order; the fleet
			// may be entirely dark during a site-wide outage.
			found := -1
			for k := 1; k < len(f.Machines); k++ {
				cand := (first + k) % len(f.Machines)
				if up(cand, t) {
					found = cand
					break
				}
			}
			if found < 0 {
				rs.Rejected++
				break
			}
			rs.Sessions[found]++
			rs.FailedOver++
		default:
			rs.Rejected++
		}
	}
	return rs
}

// splitmix64 is the repo's standard stateless mixer (same round as
// sweep.DeriveSeed).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
