package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Outage is one power-failure event: at AtPs the listed racks lose power
// simultaneously, and power returns DurationPs later. Every serving
// machine of an affected rack must drain its persistence domain on the
// rack's hold-up battery; when power returns the survivors recover in a
// storm bounded by the fleet's recovery slots.
type Outage struct {
	// AtPs is the outage instant on the shared fleet clock (picoseconds).
	AtPs int64
	// DurationPs is how long power stays off. Zero models a blip: power
	// is back immediately, but affected machines still complete their
	// drains (a drain, once triggered, runs to completion) and then
	// recover — the measured storm includes the drain tail.
	DurationPs int64
	// Racks lists the affected racks in ascending order; empty means
	// every rack (a site-wide outage).
	Racks []int
}

// covers reports whether the outage cuts power to rack r.
func (o Outage) covers(r int) bool {
	if len(o.Racks) == 0 {
		return true
	}
	for _, x := range o.Racks {
		if x == r {
			return true
		}
	}
	return false
}

// Schedule is an ordered list of outages.
type Schedule []Outage

// ScheduleError is the typed error every invalid schedule reports —
// parsing and validation never panic and never fail untyped.
type ScheduleError struct {
	Index  int // offending outage index, -1 for schedule-level faults
	Detail string
}

func (e *ScheduleError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("cluster: invalid outage schedule: %s", e.Detail)
	}
	return fmt.Sprintf("cluster: invalid outage schedule: outage[%d]: %s", e.Index, e.Detail)
}

// Validate checks the schedule against a fleet of the given rack count:
// non-negative instants and durations, sorted by time, rack indices in
// range and ascending without duplicates, and no overlapping outage
// windows on the same rack (a rack cannot lose power it does not have).
func (s Schedule) Validate(racks int) error {
	if racks < 1 {
		return &ScheduleError{Index: -1, Detail: fmt.Sprintf("rack count must be >= 1, got %d", racks)}
	}
	if len(s) > 1024 {
		return &ScheduleError{Index: -1, Detail: fmt.Sprintf("at most 1024 outages, got %d", len(s))}
	}
	for i, o := range s {
		if o.AtPs < 0 {
			return &ScheduleError{Index: i, Detail: fmt.Sprintf("outage instant must be >= 0, got %d", o.AtPs)}
		}
		if o.DurationPs < 0 {
			return &ScheduleError{Index: i, Detail: fmt.Sprintf("duration must be >= 0, got %d", o.DurationPs)}
		}
		if o.DurationPs > math.MaxInt64-o.AtPs {
			return &ScheduleError{Index: i, Detail: "restore instant overflows the picosecond clock"}
		}
		if i > 0 && o.AtPs < s[i-1].AtPs {
			return &ScheduleError{Index: i, Detail: fmt.Sprintf("outages must be sorted by time (%d after %d)", o.AtPs, s[i-1].AtPs)}
		}
		for j, r := range o.Racks {
			if r < 0 || r >= racks {
				return &ScheduleError{Index: i, Detail: fmt.Sprintf("rack %d outside [0, %d)", r, racks)}
			}
			if j > 0 && r <= o.Racks[j-1] {
				return &ScheduleError{Index: i, Detail: fmt.Sprintf("racks must be ascending without duplicates, got %v", o.Racks)}
			}
		}
	}
	// Overlap check per rack: an outage may not start while an earlier
	// one still has the rack dark.
	for r := 0; r < racks; r++ {
		end := int64(-1)
		for i, o := range s {
			if !o.covers(r) {
				continue
			}
			if o.AtPs <= end {
				return &ScheduleError{Index: i, Detail: fmt.Sprintf("rack %d is already dark at %d (previous outage ends at %d)", r, o.AtPs, end)}
			}
			if e := o.AtPs + o.DurationPs; e > end {
				end = e
			}
		}
	}
	return nil
}

// DarkAt reports whether rack r is inside any outage window at instant t.
// The window is half-open [AtPs, AtPs+DurationPs): a zero-duration blip
// never reads as dark.
func (s Schedule) DarkAt(r int, t int64) bool {
	for _, o := range s {
		if o.covers(r) && t >= o.AtPs && t < o.AtPs+o.DurationPs {
			return true
		}
	}
	return false
}

// ParseSchedule parses the CLI's outage-schedule syntax: semicolon-
// separated outages of the form "at:duration:racks", where at and
// duration are Go durations ("2ms", "500us") and racks is "all" or a
// comma-separated ascending rack list ("0,2"). Example:
//
//	"2ms:5ms:all; 12ms:1ms:0,2"
//
// The parsed schedule is validated against the given rack count; every
// failure is a *ScheduleError.
func ParseSchedule(spec string, racks int) (Schedule, error) {
	var s Schedule
	if strings.TrimSpace(spec) == "" {
		return nil, &ScheduleError{Index: -1, Detail: "empty schedule"}
	}
	for i, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, &ScheduleError{Index: i, Detail: "empty outage entry"}
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, &ScheduleError{Index: i, Detail: fmt.Sprintf("want at:duration:racks, got %q", part)}
		}
		at, err := parsePs(fields[0])
		if err != nil {
			return nil, &ScheduleError{Index: i, Detail: fmt.Sprintf("outage instant %q: %v", fields[0], err)}
		}
		dur, err := parsePs(fields[1])
		if err != nil {
			return nil, &ScheduleError{Index: i, Detail: fmt.Sprintf("duration %q: %v", fields[1], err)}
		}
		o := Outage{AtPs: at, DurationPs: dur}
		if rs := strings.TrimSpace(fields[2]); !strings.EqualFold(rs, "all") {
			for _, f := range strings.Split(rs, ",") {
				r, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, &ScheduleError{Index: i, Detail: fmt.Sprintf("rack %q: %v", f, err)}
				}
				o.Racks = append(o.Racks, r)
			}
			sort.Ints(o.Racks)
		}
		s = append(s, o)
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].AtPs < s[j].AtPs })
	if err := s.Validate(racks); err != nil {
		return nil, err
	}
	return s, nil
}

// parsePs parses a Go duration into simulated picoseconds.
func parsePs(s string) (int64, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("must be >= 0, got %v", d)
	}
	if int64(d) > math.MaxInt64/int64(sim.Nanosecond) {
		return 0, fmt.Errorf("%v overflows the picosecond clock", d)
	}
	return int64(d) * int64(sim.Nanosecond), nil
}
