package cluster

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
)

// SummaryTable renders the fleet run's headline numbers: one row per
// aggregate with the drain/recovery quantiles and the storm spans.
func SummaryTable(f *Fleet, cfg LoopConfig, m FleetMetrics, rs RouteStats) *report.Table {
	t := &report.Table{
		Title:  "Fleet run: drain contention and recovery storm",
		Header: []string{"metric", "value"},
	}
	t.AddRow("machines", fmt.Sprint(m.Machines))
	t.AddRow("racks", fmt.Sprint(f.Racks))
	t.AddRow("outage cycles", fmt.Sprint(m.Cycles))
	t.AddRow("sessions routed", fmt.Sprint(rs.Total()))
	t.AddRow("sessions failed over", fmt.Sprint(rs.FailedOver))
	t.AddRow("sessions rejected", fmt.Sprint(rs.Rejected))
	t.AddRow("drain latency p50", sim.Time(m.DrainP50Ps).String())
	t.AddRow("drain latency p99", sim.Time(m.DrainP99Ps).String())
	t.AddRow("drain makespan max", sim.Time(m.DrainMakespanMaxPs).String())
	t.AddRow("recovery latency p50", sim.Time(m.RecoverP50Ps).String())
	t.AddRow("recovery latency p99", sim.Time(m.RecoverP99Ps).String())
	t.AddRow("recovery storm max", sim.Time(m.StormMaxPs).String())
	t.AddRow("peak concurrent drains", fmt.Sprint(m.PeakDrains))
	t.AddRow("rack energy max", report.Joules(m.RackEnergyMaxJ))
	if cfg.RackPowerW > 0 {
		t.AddRow("rack power budget", fmt.Sprintf("%.0f W", cfg.RackPowerW))
	}
	if cfg.RecoverySlots > 0 {
		t.AddRow("recovery slots", fmt.Sprint(cfg.RecoverySlots))
	}
	if m.Machines == 0 {
		t.AddNote("empty fleet: nothing was simulated")
	}
	if m.Cycles == 0 && m.Machines > 0 {
		t.AddNote("no outage caught a serving machine; quantiles are zero")
	}
	t.AddNote("drain latency = power cut to drain complete (rack power-budget queueing included)")
	t.AddNote("recovery latency = power back to service restored (recovery-slot queueing included)")
	return t
}

// MachineTable lists every machine's spec, measured episode and oracle
// verdict — the per-machine artifact CI uploads.
func MachineTable(f *Fleet, runs []MachineRun, res *FleetResult) *report.Table {
	t := &report.Table{
		Title: "Fleet machines: measured episodes and oracle verdicts",
		Header: []string{"machine", "rack", "scheme", "llc", "banks", "workload",
			"drain", "power", "recover", "outcome"},
	}
	for id, spec := range f.Machines {
		r := runs[id]
		t.AddRow(spec.Name, fmt.Sprint(spec.Rack), spec.Scheme.String(),
			fmt.Sprintf("%dK", spec.LLCBytes>>10), fmt.Sprint(spec.Banks), spec.Workload,
			sim.Time(r.DrainPs).String(), fmt.Sprintf("%.1f W", r.PowerW()),
			sim.Time(r.RecoverPs).String(), r.Outcome)
	}
	if len(f.Machines) == 0 {
		t.AddNote("empty fleet")
	}
	for _, rack := range res.BatteryExceeded {
		t.AddNote("FAIL rack %d drains overdrew the rack battery budget (%s > %s)",
			rack, report.Joules(res.RackEnergyJ[rack]), report.Joules(res.Config.RackBatteryJ))
	}
	return t
}

// StormTable lists each scheduled outage end to end.
func StormTable(res *FleetResult) *report.Table {
	t := &report.Table{
		Title:  "Recovery storms: one row per scheduled outage",
		Header: []string{"outage", "at", "dark", "machines", "skipped", "peak drains", "drain makespan", "storm"},
	}
	for i, s := range res.Storms {
		t.AddRow(fmt.Sprint(i), sim.Time(s.Outage.AtPs).String(), sim.Time(s.Outage.DurationPs).String(),
			fmt.Sprint(s.Machines), fmt.Sprint(s.Skipped), fmt.Sprint(s.PeakDrains),
			sim.Time(s.DrainMakespanPs).String(), sim.Time(s.StormPs).String())
	}
	if len(res.Storms) == 0 {
		t.AddNote("no outages scheduled")
	}
	t.AddNote("storm = power back to last machine re-serving; dark 0s = power blip (drains still run to completion)")
	return t
}

// ganttWidth is the storm Gantt's character width (matches the drain
// timeline Gantt in internal/report).
const ganttWidth = 96

// ganttChar maps a phase to its Gantt marker; serve renders blank so the
// outage structure stands out.
func ganttChar(p Phase) byte {
	switch p {
	case PhaseDrainWait:
		return '!'
	case PhaseDrain:
		return 'D'
	case PhaseDown:
		return '.'
	case PhaseRecoverWait:
		return 'r'
	case PhaseRecover:
		return 'R'
	default:
		return ' '
	}
}

// StormGantt renders the fleet's phase timelines as an ASCII Gantt: one
// track per machine, one character per time bucket showing the dominant
// non-serving phase of the bucket. Handles the edge cases explicitly:
// an empty fleet and a zero-length run render as notes, a single machine
// renders as a single track.
func StormGantt(f *Fleet, res *FleetResult) *report.Table {
	t := &report.Table{Title: "Recovery-storm timeline"}
	if len(f.Machines) == 0 {
		t.AddNote("empty fleet")
		return t
	}
	total := res.EndPs
	if total <= 0 {
		t.AddNote("zero-length run: no outage produced any activity")
		return t
	}
	t.Header = []string{"machine", fmt.Sprintf("0 .. %s (%d cols)", sim.Time(total), ganttWidth)}
	bucketOf := func(ts int64) int {
		b := int(ts * ganttWidth / total)
		if b < 0 {
			b = 0
		}
		if b >= ganttWidth {
			b = ganttWidth - 1
		}
		return b
	}
	for _, tl := range res.Timelines {
		// Per-bucket occupancy of each non-serve phase; the densest wins.
		var occ [6][ganttWidth]int64
		for _, iv := range tl.Intervals {
			if iv.Phase == PhaseServe || iv.EndPs <= iv.StartPs {
				continue
			}
			for b := bucketOf(iv.StartPs); b <= bucketOf(iv.EndPs-1); b++ {
				bLo := int64(b) * total / ganttWidth
				bHi := int64(b+1) * total / ganttWidth
				lo, hi := iv.StartPs, iv.EndPs
				if lo < bLo {
					lo = bLo
				}
				if hi > bHi {
					hi = bHi
				}
				if hi > lo {
					occ[iv.Phase][b] += hi - lo
				}
			}
		}
		bar := make([]byte, ganttWidth)
		for b := 0; b < ganttWidth; b++ {
			best, bestOcc := PhaseServe, int64(0)
			for p := PhaseDrainWait; p <= PhaseRecover; p++ {
				if occ[p][b] > bestOcc {
					best, bestOcc = p, occ[p][b]
				}
			}
			bar[b] = ganttChar(best)
		}
		t.AddRow(f.Machines[tl.Machine].Name, string(bar))
	}
	t.AddNote("phases: ! = queued for rack power budget, D = draining, . = dark, r = queued for recovery slot, R = recovering, blank = serving")
	return t
}
