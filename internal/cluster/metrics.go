package cluster

import (
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/obs/timeseries"
)

// Quantile returns the q-quantile (0 <= q <= 1) of vals by the
// nearest-rank method over a sorted copy — deterministic, no
// interpolation, exact for the small populations fleets produce. Zero for
// an empty slice.
func Quantile(vals []int64, q float64) int64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	switch {
	case q <= 0:
		return s[0]
	case q >= 1:
		return s[len(s)-1]
	}
	// Nearest rank: ceil(q * N), 1-based.
	rank := int(q * float64(len(s)))
	if float64(rank) < q*float64(len(s)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// FleetMetrics aggregates a FleetResult into the fleet SLO currency.
type FleetMetrics struct {
	// Machines is the fleet size; Cycles the completed outage passages.
	Machines, Cycles int
	// Drain latency (power-cut to drain-complete: budget queueing plus
	// the measured drain), picoseconds.
	DrainP50Ps, DrainP99Ps, DrainMaxPs int64
	// Recovery latency (power-back to service-restored), picoseconds.
	RecoverP50Ps, RecoverP99Ps, RecoverMaxPs int64
	// StormMaxPs is the longest recovery storm across outages;
	// DrainMakespanMaxPs the longest power-cut-to-last-drain span (what
	// the rack battery must sustain).
	StormMaxPs, DrainMakespanMaxPs int64
	// PeakDrains is the fleet-wide peak of concurrently admitted drains
	// within a single outage.
	PeakDrains int
	// RackEnergyMaxJ is the largest per-rack cumulative drain energy.
	RackEnergyMaxJ float64
}

// Summarize folds a fleet result into quantile metrics.
func Summarize(f *Fleet, res *FleetResult) FleetMetrics {
	m := FleetMetrics{Machines: len(f.Machines), Cycles: len(res.Cycles)}
	drains := make([]int64, 0, len(res.Cycles))
	recovers := make([]int64, 0, len(res.Cycles))
	for _, c := range res.Cycles {
		drains = append(drains, c.DrainLatencyPs())
		recovers = append(recovers, c.RecoverLatencyPs())
	}
	m.DrainP50Ps = Quantile(drains, 0.5)
	m.DrainP99Ps = Quantile(drains, 0.99)
	m.DrainMaxPs = Quantile(drains, 1)
	m.RecoverP50Ps = Quantile(recovers, 0.5)
	m.RecoverP99Ps = Quantile(recovers, 0.99)
	m.RecoverMaxPs = Quantile(recovers, 1)
	for _, s := range res.Storms {
		if s.StormPs > m.StormMaxPs {
			m.StormMaxPs = s.StormPs
		}
		if s.DrainMakespanPs > m.DrainMakespanMaxPs {
			m.DrainMakespanMaxPs = s.DrainMakespanPs
		}
		if s.PeakDrains > m.PeakDrains {
			m.PeakDrains = s.PeakDrains
		}
	}
	for _, e := range res.RackEnergyJ {
		if e > m.RackEnergyMaxJ {
			m.RackEnergyMaxJ = e
		}
	}
	return m
}

// Publish exports the fleet metrics into the registry (for /metrics) and
// stamps the quantile gauges onto the sampler at the loop's end instant
// (for /timeseries.json and the fleet SLO rules). Both sinks are
// nil-safe.
func Publish(reg *obs.Registry, ts *timeseries.Sampler, f *Fleet, runs []MachineRun, res *FleetResult, m FleetMetrics) {
	if reg != nil {
		reg.SetHelp("horus_fleet_machines", "Machines simulated in the fleet run.")
		reg.SetHelp("horus_fleet_drain_p99_ps", "Fleet p99 drain latency: power cut to drain complete, picoseconds.")
		reg.SetHelp("horus_fleet_recover_p99_ps", "Fleet p99 recovery latency: power back to service restored, picoseconds.")
		reg.SetHelp("horus_fleet_storm_max_ps", "Longest recovery storm across scheduled outages, picoseconds.")
		reg.SetHelp("horus_fleet_outcomes_total", "Machine recovery-oracle verdicts across the fleet run.")
		reg.SetHelp("horus_fleet_rack_energy_j", "Cumulative drain energy drawn per rack, joules.")
		reg.Gauge("horus_fleet_machines").Set(float64(m.Machines))
		reg.Gauge("horus_fleet_drain_p50_ps").Set(float64(m.DrainP50Ps))
		reg.Gauge("horus_fleet_drain_p99_ps").Set(float64(m.DrainP99Ps))
		reg.Gauge("horus_fleet_recover_p50_ps").Set(float64(m.RecoverP50Ps))
		reg.Gauge("horus_fleet_recover_p99_ps").Set(float64(m.RecoverP99Ps))
		reg.Gauge("horus_fleet_storm_max_ps").Set(float64(m.StormMaxPs))
		reg.Gauge("horus_fleet_peak_drains").Set(float64(m.PeakDrains))
		for id, r := range runs {
			reg.Counter("horus_fleet_outcomes_total",
				"scheme", f.Machines[id].Scheme.String(), "outcome", r.Outcome).Add(1)
		}
		for rack, e := range res.RackEnergyJ {
			reg.Gauge("horus_fleet_rack_energy_j", "rack", strconv.Itoa(rack)).Set(e)
		}
	}
	// Final-value gauges at the loop's end instant: the SLO rules read
	// these with FinalAtMost.
	end := res.EndPs
	ts.Gauge("horus_fleet_ts_drain_p99_ps").Record(end, float64(m.DrainP99Ps))
	ts.Gauge("horus_fleet_ts_recover_p99_ps").Record(end, float64(m.RecoverP99Ps))
	ts.Gauge("horus_fleet_ts_storm_max_ps").Record(end, float64(m.StormMaxPs))
}
