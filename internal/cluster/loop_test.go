package cluster

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/obs/timeseries"
)

// testFleet builds a tiny validated fleet: n machines over r racks.
func testFleet(t *testing.T, n, r int) *Fleet {
	t.Helper()
	f, err := Generate(GenerateOptions{Machines: n, Racks: r, Seed: 1})
	if err != nil {
		t.Fatalf("Generate(%d, %d): %v", n, r, err)
	}
	return f
}

// flatRuns builds identical measured episodes: drain 100 ps at 100 W
// average power, recovery 40 ps.
func flatRuns(n int) []MachineRun {
	runs := make([]MachineRun, n)
	for i := range runs {
		runs[i] = MachineRun{DrainPs: 100, DrainEnergyJ: 1e-8, RecoverPs: 40, Outcome: "restored"}
	}
	return runs
}

// TestLoopSerialisesDrainsUnderPowerBudget pins the rack power budget: two
// 100 W drains under a 150 W cap must run one after the other, and the
// storm then serialises the recoveries under one recovery slot.
func TestLoopSerialisesDrainsUnderPowerBudget(t *testing.T) {
	f := testFleet(t, 2, 1)
	runs := flatRuns(2)
	sched := Schedule{{AtPs: 0, DurationPs: 1000}}
	res, err := Run(f, LoopConfig{RackPowerW: 150, RecoverySlots: 1}, runs, sched, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Cycles) != 2 {
		t.Fatalf("%d cycles, want 2", len(res.Cycles))
	}
	c0, c1 := res.Cycles[0], res.Cycles[1]
	if c0.DrainStartPs != 0 || c0.DrainEndPs != 100 {
		t.Errorf("machine 0 drain [%d, %d], want [0, 100]", c0.DrainStartPs, c0.DrainEndPs)
	}
	if c1.DrainStartPs != 100 || c1.DrainEndPs != 200 {
		t.Errorf("machine 1 drain [%d, %d], want [100, 200] (power budget must serialise)", c1.DrainStartPs, c1.DrainEndPs)
	}
	if res.Storms[0].PeakDrains != 1 {
		t.Errorf("peak drains %d, want 1", res.Storms[0].PeakDrains)
	}
	if res.Storms[0].DrainMakespanPs != 200 {
		t.Errorf("drain makespan %d, want 200", res.Storms[0].DrainMakespanPs)
	}
	// Power back at 1000; one slot: recoveries at [1000,1040] and [1040,1080].
	if c0.RecoverStartPs != 1000 || c0.RecoverEndPs != 1040 {
		t.Errorf("machine 0 recovery [%d, %d], want [1000, 1040]", c0.RecoverStartPs, c0.RecoverEndPs)
	}
	if c1.RecoverStartPs != 1040 || c1.RecoverEndPs != 1080 {
		t.Errorf("machine 1 recovery [%d, %d], want [1040, 1080] (slot must serialise)", c1.RecoverStartPs, c1.RecoverEndPs)
	}
	if res.Storms[0].StormPs != 80 {
		t.Errorf("storm %d ps, want 80", res.Storms[0].StormPs)
	}
	if res.EndPs != 1080 {
		t.Errorf("end %d, want 1080", res.EndPs)
	}
}

// TestLoopUncappedRunsConcurrently is the control: without budgets both
// machines drain at once and recover at once.
func TestLoopUncappedRunsConcurrently(t *testing.T) {
	f := testFleet(t, 2, 1)
	res, err := Run(f, LoopConfig{}, flatRuns(2), Schedule{{AtPs: 0, DurationPs: 1000}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, c := range res.Cycles {
		if c.DrainStartPs != 0 || c.DrainEndPs != 100 {
			t.Errorf("machine %d drain [%d, %d], want concurrent [0, 100]", i, c.DrainStartPs, c.DrainEndPs)
		}
		if c.RecoverStartPs != 1000 || c.RecoverEndPs != 1040 {
			t.Errorf("machine %d recovery [%d, %d], want concurrent [1000, 1040]", i, c.RecoverStartPs, c.RecoverEndPs)
		}
	}
	if res.Storms[0].PeakDrains != 2 {
		t.Errorf("peak drains %d, want 2", res.Storms[0].PeakDrains)
	}
	if res.Storms[0].StormPs != 40 {
		t.Errorf("storm %d, want 40", res.Storms[0].StormPs)
	}
}

// TestLoopOverBudgetMachineStillAdmitted pins the no-deadlock guarantee: a
// machine whose own draw exceeds the rack budget is admitted when the rack
// is idle.
func TestLoopOverBudgetMachineStillAdmitted(t *testing.T) {
	f := testFleet(t, 1, 1)
	res, err := Run(f, LoopConfig{RackPowerW: 1}, flatRuns(1), Schedule{{AtPs: 0, DurationPs: 500}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Cycles) != 1 || res.Cycles[0].DrainStartPs != 0 {
		t.Fatalf("over-budget machine was not admitted: %+v", res.Cycles)
	}
}

// TestLoopPowerBlip pins zero-duration outages: power is back immediately
// but the triggered drain runs to completion, and the machine then
// recovers straight away — the storm includes the drain tail.
func TestLoopPowerBlip(t *testing.T) {
	f := testFleet(t, 1, 1)
	res, err := Run(f, LoopConfig{}, flatRuns(1), Schedule{{AtPs: 50, DurationPs: 0}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := res.Cycles[0]
	if c.DrainStartPs != 50 || c.DrainEndPs != 150 {
		t.Errorf("blip drain [%d, %d], want [50, 150]", c.DrainStartPs, c.DrainEndPs)
	}
	if c.RecoverStartPs != 150 || c.RecoverEndPs != 190 {
		t.Errorf("blip recovery [%d, %d], want [150, 190] (no dark wait)", c.RecoverStartPs, c.RecoverEndPs)
	}
	// Storm measured from the restore instant (50): drain tail included.
	if res.Storms[0].StormPs != 140 {
		t.Errorf("blip storm %d, want 140", res.Storms[0].StormPs)
	}
	// No machine ever sat in PhaseDown.
	for _, iv := range res.Timelines[0].Intervals {
		if iv.Phase == PhaseDown {
			t.Errorf("blip produced a dark interval: %+v", iv)
		}
	}
}

// TestLoopSecondOutageSkipsBusyMachines pins re-outage semantics: an
// outage hitting a machine still mid-cycle skips it, and one hitting a
// recovered machine drains it again.
func TestLoopSecondOutageSkipsBusyMachines(t *testing.T) {
	f := testFleet(t, 1, 1)
	// First outage holds the machine dark until 1000; second fires at 500
	// while it is down — skipped. Third at 2000 catches it serving again.
	// Note outages 1 and 2 overlap on the rack, so build them apart:
	sched := Schedule{
		{AtPs: 0, DurationPs: 1000},
		{AtPs: 2000, DurationPs: 100},
	}
	res, err := Run(f, LoopConfig{}, flatRuns(1), sched, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Cycles) != 2 {
		t.Fatalf("%d cycles, want 2 (machine must re-drain on the second outage)", len(res.Cycles))
	}
	if res.Cycles[1].OutageAtPs != 2000 || res.Cycles[1].DrainEndPs != 2100 {
		t.Errorf("second cycle: %+v", res.Cycles[1])
	}

	// An outage landing mid-recovery is skipped. First outage restores at
	// 200; recovery runs [200, 240); second outage at 220.
	sched = Schedule{
		{AtPs: 0, DurationPs: 200},
		{AtPs: 220, DurationPs: 10},
	}
	res, err = Run(f, LoopConfig{}, flatRuns(1), sched, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Cycles) != 1 {
		t.Fatalf("%d cycles, want 1 (mid-recovery outage must be skipped)", len(res.Cycles))
	}
	if res.Storms[1].Skipped != 1 || res.Storms[1].Machines != 0 {
		t.Errorf("second storm: %+v", res.Storms[1])
	}
}

// TestLoopRackIsolation pins the power-domain boundary: an outage on rack
// 0 leaves rack 1's machines serving end to end.
func TestLoopRackIsolation(t *testing.T) {
	f := testFleet(t, 4, 2) // machines 0,2 on rack 0; 1,3 on rack 1
	res, err := Run(f, LoopConfig{}, flatRuns(4), Schedule{{AtPs: 0, DurationPs: 500, Racks: []int{0}}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Cycles) != 2 {
		t.Fatalf("%d cycles, want 2 (only rack 0 machines)", len(res.Cycles))
	}
	for _, c := range res.Cycles {
		if f.Machines[c.Machine].Rack != 0 {
			t.Errorf("machine %d of rack %d drained on a rack-0 outage", c.Machine, f.Machines[c.Machine].Rack)
		}
	}
	for _, id := range []int{1, 3} {
		ivs := res.Timelines[id].Intervals
		if len(ivs) != 1 || ivs[0].Phase != PhaseServe {
			t.Errorf("rack-1 machine %d did not serve throughout: %+v", id, ivs)
		}
	}
	if res.RackEnergyJ[1] != 0 {
		t.Errorf("rack 1 drew %g J without an outage", res.RackEnergyJ[1])
	}
}

// TestLoopEnergyAccounting pins drawdown and the battery-budget flag.
func TestLoopEnergyAccounting(t *testing.T) {
	f := testFleet(t, 2, 1)
	runs := flatRuns(2)
	res, err := Run(f, LoopConfig{RackBatteryJ: 1.5e-8}, runs, Schedule{{AtPs: 0, DurationPs: 1000}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.RackEnergyJ[0]; got != 2e-8 {
		t.Errorf("rack energy %g, want 2e-8", got)
	}
	if !reflect.DeepEqual(res.BatteryExceeded, []int{0}) {
		t.Errorf("BatteryExceeded = %v, want [0]", res.BatteryExceeded)
	}
}

// TestLoopDeterministic pins the loop's pure-function contract, including
// the recorded fleet series.
func TestLoopDeterministic(t *testing.T) {
	f := testFleet(t, 8, 2)
	runs := make([]MachineRun, 8)
	for i := range runs {
		runs[i] = MachineRun{DrainPs: int64(50 + 17*i), DrainEnergyJ: 1e-9 * float64(i+1), RecoverPs: int64(30 + 11*i), Outcome: "restored"}
	}
	sched := Schedule{{AtPs: 0, DurationPs: 400, Racks: []int{0}}, {AtPs: 1000, DurationPs: 0}}
	cfg := LoopConfig{RackPowerW: 25, RecoverySlots: 2}
	ts1 := timeseries.New(0, 0)
	ts2 := timeseries.New(0, 0)
	a, err := Run(f, cfg, runs, sched, ts1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(f, cfg, runs, sched, ts2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("loop results differ across identical runs")
	}
	if !reflect.DeepEqual(ts1.Snapshot(), ts2.Snapshot()) {
		t.Error("fleet series differ across identical runs")
	}
}

// TestLoopEveryMachineTerminal is the in-package half of the oracle
// contract: after any valid schedule every affected machine ends back in
// PhaseServe with a completed cycle — no machine is left dark or
// mid-recovery when the loop returns.
func TestLoopEveryMachineTerminal(t *testing.T) {
	f := testFleet(t, 16, 4)
	runs := make([]MachineRun, 16)
	for i := range runs {
		runs[i] = MachineRun{DrainPs: int64(10 + i), DrainEnergyJ: 1e-9, RecoverPs: int64(5 + i), Outcome: "restored"}
	}
	sched := Schedule{
		{AtPs: 0, DurationPs: 100, Racks: []int{0, 1}},
		{AtPs: 500, DurationPs: 0, Racks: []int{2}},
		{AtPs: 1000, DurationPs: 300},
	}
	res, err := Run(f, LoopConfig{RackPowerW: 120, RecoverySlots: 3}, runs, sched, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tl := range res.Timelines {
		last := tl.Intervals[len(tl.Intervals)-1]
		if last.Phase != PhaseServe {
			t.Errorf("machine %d ends in %v, want serve", tl.Machine, last.Phase)
		}
	}
	for _, c := range res.Cycles {
		if c.DrainEndPs < c.DrainStartPs || c.RecoverEndPs < c.RecoverStartPs || c.RecoverStartPs < c.DrainEndPs {
			t.Errorf("incoherent cycle: %+v", c)
		}
	}
	want := 0
	for _, s := range res.Storms {
		want += s.Machines
	}
	if len(res.Cycles) != want {
		t.Errorf("%d cycles for %d affected machines", len(res.Cycles), want)
	}
}

// TestLoopRejectsTyped pins the loop's error contract.
func TestLoopRejectsTyped(t *testing.T) {
	f := testFleet(t, 2, 1)
	var ce *ConfigError
	if _, err := Run(f, LoopConfig{}, flatRuns(3), nil, nil); !errors.As(err, &ce) {
		t.Error("run-count mismatch must fail with *ConfigError")
	}
	bad := flatRuns(2)
	bad[1].DrainPs = -1
	if _, err := Run(f, LoopConfig{}, bad, nil, nil); !errors.As(err, &ce) {
		t.Error("negative duration must fail with *ConfigError")
	}
	var se *ScheduleError
	if _, err := Run(f, LoopConfig{}, flatRuns(2), Schedule{{AtPs: -1}}, nil); !errors.As(err, &se) {
		t.Error("invalid schedule must fail with *ScheduleError")
	}
}
