package horus

import (
	"context"
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/report"
	"repro/internal/sim"
)

// Ablations bundles the design-space studies DESIGN.md §5 calls out,
// rendered as tables. They complement the paper's figures with the
// simulator's own sensitivity analyses.
type Ablations struct {
	FillPattern *report.Table // baseline vs Horus across pre-crash content patterns
	DataSize    *report.Table // capacity decoupling (§I design goal)
	TreeProfile *report.Table // per-level fetch profile behind Fig. 6
	Recovery    *report.Table // serial vs bank-parallel CHV read-back
}

// RunAblations executes the ablation suite at the given configuration
// scale.
func RunAblations(cfg Config) (Ablations, error) {
	return RunAblationsCtx(context.Background(), cfg, SweepOptions{})
}

// RunAblationsCtx executes the ablation suite through the episode engine:
// each study is a declarative point grid (or custom episode set) sharing
// ctx and the worker-pool options.
func RunAblationsCtx(ctx context.Context, cfg Config, opts SweepOptions) (Ablations, error) {
	var a Ablations
	var err error
	if a.FillPattern, err = ablateFillPattern(ctx, cfg, opts); err != nil {
		return a, err
	}
	if a.DataSize, err = ablateDataSize(ctx, cfg, opts); err != nil {
		return a, err
	}
	if a.TreeProfile, err = ablateTreeProfile(ctx, cfg, opts); err != nil {
		return a, err
	}
	if a.Recovery, err = ablateRecovery(ctx, cfg, opts); err != nil {
		return a, err
	}
	return a, nil
}

// ablationSchemes are the two designs every ablation contrasts: the lazy
// baseline against Horus-SLM.
var ablationSchemes = []Scheme{BaseLU, HorusSLM}

// pairGrid runs a (case × {Base-LU, Horus-SLM}) grid and renders one table
// row per case with the per-block access count of each scheme.
func pairGrid(ctx context.Context, opts SweepOptions, t *report.Table, names []string, configs []Config) error {
	var points []DrainPoint
	for i, c := range configs {
		for _, s := range ablationSchemes {
			points = append(points, DrainPoint{
				Label:  fmt.Sprintf("%s/%v", names[i], s),
				Config: c,
				Scheme: s,
			})
		}
	}
	prs, err := RunDrainGrid(ctx, points, opts)
	if err != nil {
		return err
	}
	for i := range configs {
		lu := prs[i*len(ablationSchemes)].Result
		slm := prs[i*len(ablationSchemes)+1].Result
		t.AddRow(names[i],
			fmt.Sprintf("%.2f", perBlock(lu)),
			fmt.Sprintf("%.2f", perBlock(slm)))
	}
	return nil
}

func ablateFillPattern(ctx context.Context, cfg Config, opts SweepOptions) (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablation: pre-crash content pattern (accesses per drained block)",
		Header: []string{"pattern", "Base-LU", "Horus-SLM"},
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"dense (best case)", func(c *Config) { c.FillPattern = hierarchy.PatternDense }},
		{"paper spacing, in order", func(c *Config) {}},
		{"random sparse, shuffled", func(c *Config) {
			c.FillPattern = hierarchy.PatternWorstCaseSparse
			c.FlushShuffle = true
		}},
	}
	names := make([]string, len(cases))
	configs := make([]Config, len(cases))
	for i, cse := range cases {
		c := cfg
		cse.mut(&c)
		names[i] = cse.name
		configs[i] = c
	}
	if err := pairGrid(ctx, opts, t, names, configs); err != nil {
		return nil, err
	}
	t.AddNote("Horus is oblivious to the pattern; the baseline swings by an order of magnitude")
	return t, nil
}

func ablateDataSize(ctx context.Context, cfg Config, opts SweepOptions) (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablation: protected-memory capacity (accesses per drained block)",
		Header: []string{"capacity", "Base-LU", "Horus-SLM"},
	}
	base := cfg.DataSize
	var names []string
	var configs []Config
	for _, mult := range []uint64{1, 4, 16} {
		c := cfg
		c.DataSize = base * mult
		names = append(names, fmt.Sprintf("%dGB", c.DataSize>>30))
		configs = append(configs, c)
	}
	if err := pairGrid(ctx, opts, t, names, configs); err != nil {
		return nil, err
	}
	t.AddNote("the paper's design goal: Horus decouples the hold-up budget from memory capacity (§I)")
	return t, nil
}

func ablateTreeProfile(ctx context.Context, cfg Config, opts SweepOptions) (*report.Table, error) {
	// A custom episode: the study needs the secure controller's per-level
	// fetch profile after the drain, not just the drain Result.
	type profile struct {
		names   []string
		fetches []int64
	}
	results, err := runEpisodes(ctx, cfg, opts, []Episode{{
		Label: "tree-profile/Base-LU",
		Run: func(ctx context.Context, env EpisodeEnv) (any, error) {
			c := cfg
			c.Metrics = env.Metrics
			sys := NewSystem(c, BaseLU)
			if err := sys.Warmup(); err != nil {
				return nil, err
			}
			sys.Fill()
			if _, err := sys.Drain(); err != nil {
				return nil, err
			}
			lf := sys.Core.Sec.LevelFetches()
			var p profile
			for _, name := range lf.SortedNames() {
				p.names = append(p.names, name)
				p.fetches = append(p.fetches, lf.Get(name))
			}
			return p, nil
		},
	}})
	if err != nil {
		return nil, err
	}
	p := results[0].Value.(profile)
	t := &report.Table{
		Title:  "Ablation: Base-LU verification-walk fetch profile (why Fig. 6 blows up)",
		Header: []string{"metadata level", "NVM fetches"},
	}
	for i, name := range p.names {
		t.AddRow(name, report.Count(p.fetches[i]))
	}
	t.AddNote("L0 = counter blocks; sparse flushes miss the low tree levels on almost every access")
	return t, nil
}

func ablateRecovery(ctx context.Context, cfg Config, opts SweepOptions) (*report.Table, error) {
	// A custom episode: serial and bank-parallel recovery must replay the
	// same drained machine, so both run inside one episode.
	type times struct{ serial, parallel sim.Time }
	results, err := runEpisodes(ctx, cfg, opts, []Episode{{
		Label: "recovery-model/Horus-SLM",
		Run: func(ctx context.Context, env EpisodeEnv) (any, error) {
			c := cfg
			c.Metrics = env.Metrics
			sys := NewSystem(c, HorusSLM)
			if err := sys.Warmup(); err != nil {
				return nil, err
			}
			sys.Fill()
			res, err := sys.Drain()
			if err != nil {
				return nil, err
			}
			sys.Crash()
			serial, err := RecoverSerial(sys, res.Persist)
			if err != nil {
				return nil, err
			}
			sys.Core.Sec.Crash()
			parallel, err := RecoverParallel(sys, res.Persist)
			if err != nil {
				return nil, err
			}
			return times{serial, parallel}, nil
		},
	}})
	if err != nil {
		return nil, err
	}
	tm := results[0].Value.(times)
	t := &report.Table{
		Title:  "Ablation: CHV recovery read-back model",
		Header: []string{"model", "recovery time"},
	}
	t.AddRow("serial (paper Fig. 16)", tm.serial.String())
	t.AddRow("bank-parallel (extension)", tm.parallel.String())
	t.AddNote("speedup %.1fx: the banked NVM leaves recovery-time headroom", float64(tm.serial)/float64(tm.parallel))
	return t, nil
}

func perBlock(r Result) float64 {
	return float64(r.TotalMemAccesses()) / float64(r.BlocksDrained)
}
