package horus

import (
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/report"
)

// Ablations bundles the design-space studies DESIGN.md §5 calls out,
// rendered as tables. They complement the paper's figures with the
// simulator's own sensitivity analyses.
type Ablations struct {
	FillPattern *report.Table // baseline vs Horus across pre-crash content patterns
	DataSize    *report.Table // capacity decoupling (§I design goal)
	TreeProfile *report.Table // per-level fetch profile behind Fig. 6
	Recovery    *report.Table // serial vs bank-parallel CHV read-back
}

// RunAblations executes the ablation suite at the given configuration
// scale.
func RunAblations(cfg Config) (Ablations, error) {
	var a Ablations
	var err error
	if a.FillPattern, err = ablateFillPattern(cfg); err != nil {
		return a, err
	}
	if a.DataSize, err = ablateDataSize(cfg); err != nil {
		return a, err
	}
	if a.TreeProfile, err = ablateTreeProfile(cfg); err != nil {
		return a, err
	}
	if a.Recovery, err = ablateRecovery(cfg); err != nil {
		return a, err
	}
	return a, nil
}

func ablateFillPattern(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablation: pre-crash content pattern (accesses per drained block)",
		Header: []string{"pattern", "Base-LU", "Horus-SLM"},
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"dense (best case)", func(c *Config) { c.FillPattern = hierarchy.PatternDense }},
		{"paper spacing, in order", func(c *Config) {}},
		{"random sparse, shuffled", func(c *Config) {
			c.FillPattern = hierarchy.PatternWorstCaseSparse
			c.FlushShuffle = true
		}},
	}
	for _, cse := range cases {
		c := cfg
		cse.mut(&c)
		lu, err := RunDrain(c, BaseLU)
		if err != nil {
			return nil, err
		}
		slm, err := RunDrain(c, HorusSLM)
		if err != nil {
			return nil, err
		}
		t.AddRow(cse.name,
			fmt.Sprintf("%.2f", perBlock(lu)),
			fmt.Sprintf("%.2f", perBlock(slm)))
	}
	t.AddNote("Horus is oblivious to the pattern; the baseline swings by an order of magnitude")
	return t, nil
}

func ablateDataSize(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablation: protected-memory capacity (accesses per drained block)",
		Header: []string{"capacity", "Base-LU", "Horus-SLM"},
	}
	base := cfg.DataSize
	for _, mult := range []uint64{1, 4, 16} {
		c := cfg
		c.DataSize = base * mult
		lu, err := RunDrain(c, BaseLU)
		if err != nil {
			return nil, err
		}
		slm, err := RunDrain(c, HorusSLM)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dGB", c.DataSize>>30),
			fmt.Sprintf("%.2f", perBlock(lu)),
			fmt.Sprintf("%.2f", perBlock(slm)))
	}
	t.AddNote("the paper's design goal: Horus decouples the hold-up budget from memory capacity (§I)")
	return t, nil
}

func ablateTreeProfile(cfg Config) (*report.Table, error) {
	sys := NewSystem(cfg, BaseLU)
	if err := sys.Warmup(); err != nil {
		return nil, err
	}
	sys.Fill()
	if _, err := sys.Drain(); err != nil {
		return nil, err
	}
	lf := sys.Core.Sec.LevelFetches()
	t := &report.Table{
		Title:  "Ablation: Base-LU verification-walk fetch profile (why Fig. 6 blows up)",
		Header: []string{"metadata level", "NVM fetches"},
	}
	for _, name := range lf.SortedNames() {
		t.AddRow(name, report.Count(lf.Get(name)))
	}
	t.AddNote("L0 = counter blocks; sparse flushes miss the low tree levels on almost every access")
	return t, nil
}

func ablateRecovery(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablation: CHV recovery read-back model",
		Header: []string{"model", "recovery time"},
	}
	sys := NewSystem(cfg, HorusSLM)
	if err := sys.Warmup(); err != nil {
		return nil, err
	}
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		return nil, err
	}
	sys.Crash()
	serial, err := RecoverSerial(sys, res.Persist)
	if err != nil {
		return nil, err
	}
	sys.Core.Sec.Crash()
	parallel, err := RecoverParallel(sys, res.Persist)
	if err != nil {
		return nil, err
	}
	t.AddRow("serial (paper Fig. 16)", serial.String())
	t.AddRow("bank-parallel (extension)", parallel.String())
	t.AddNote("speedup %.1fx: the banked NVM leaves recovery-time headroom", float64(serial)/float64(parallel))
	return t, nil
}

func perBlock(r Result) float64 {
	return float64(r.TotalMemAccesses()) / float64(r.BlocksDrained)
}
