package horus

import (
	"repro/internal/energy"
	"repro/internal/obs/serve"
	"repro/internal/obs/slo"
	"repro/internal/obs/timeseries"
	"repro/internal/sweep"
)

// Live-telemetry re-exports: the windowed sim-time sampler
// (internal/obs/timeseries), the monitoring HTTP server
// (internal/obs/serve) and the SLO engine (internal/obs/slo). See
// DESIGN.md §12.
type (
	// TimeseriesSampler records windowed time series over the simulated
	// clock; attach one via Config.Timeseries. Nil-safe everywhere: a
	// nil sampler costs one pointer check per event.
	TimeseriesSampler = timeseries.Sampler
	// TimeseriesSeries is one named series handle.
	TimeseriesSeries = timeseries.Series
	// TimeseriesSnapshot is the exported state of a sampler
	// (/timeseries.json's document).
	TimeseriesSnapshot = timeseries.Snapshot
	// SeriesSnapshot is one exported series.
	SeriesSnapshot = timeseries.SeriesSnapshot
	// TimeseriesPoint is one windowed sample (sim-time ps, value).
	TimeseriesPoint = timeseries.Point

	// MonitorServer serves /metrics, /healthz, /timeseries.json and the
	// SSE /progress stream over a registry and a sampler.
	MonitorServer = serve.Server
	// MonitorProgressEvent is the wire form of one /progress SSE event.
	MonitorProgressEvent = serve.ProgressEvent

	// SLORule is one declarative objective over a recorded series.
	SLORule = slo.Rule
	// SLOReport aggregates rule verdicts; Table() renders the violating
	// (scheme, point) cells, Ok() gates the CLI exit code.
	SLOReport = slo.Report
	// SLOVerdict is one rule × series outcome.
	SLOVerdict = slo.Verdict

	// SweepProgress reports one finished episode to
	// SweepOptions.Progress (done/total, label, elapsed; EpisodesPerSec
	// and ETA derive the stderr/SSE fields).
	SweepProgress = sweep.ProgressEvent
)

// SLO predicate operators.
const (
	SLOFinalAtMost = slo.FinalAtMost
	SLOMaxAtMost   = slo.MaxAtMost
	SLOAlwaysZero  = slo.AlwaysZero
)

// NewTimeseriesSampler returns a sampler with windowPs-wide initial
// buckets (<= 0 selects the 1 ns default) coarsening beyond capacity
// points per series (<= 0 selects 512).
func NewTimeseriesSampler(windowPs int64, capacity int) *TimeseriesSampler {
	return timeseries.New(windowPs, capacity)
}

// NewMonitorServer returns a monitoring server over the given (possibly
// nil) registry and sampler.
func NewMonitorServer(reg *MetricsRegistry, ts *TimeseriesSampler) *MonitorServer {
	return serve.New(reg, ts)
}

// EvaluateSLO applies the rules to a sampler snapshot.
func EvaluateSLO(rules []SLORule, snap TimeseriesSnapshot) *SLOReport {
	return slo.Evaluate(rules, snap)
}

// BatteryBudgetJoules converts a provisioned back-up volume (Table III)
// into the drain's hold-up energy budget. tech is resolved by name
// ("supercap" or "li-thin", case-insensitive); unknown names return false.
func BatteryBudgetJoules(volCm3 float64, tech string) (float64, bool) {
	t, ok := energy.TechByName(tech)
	if !ok {
		return 0, false
	}
	return energy.BudgetJoules(volCm3, t), true
}

// DrainSLORules builds the battery-race objectives for a drain whose
// episodes recorded time series under budgetJ joules of hold-up energy
// (Config.BatteryJoules):
//
//   - drain-energy-budget: the final energy-drawdown point of every
//     scheme/point series must not exceed the budget (Table II vs III).
//   - drain-energy-frac: the budget-fraction series must never exceed 1.
//   - drain-deadline: the drain must finish before processor draw alone
//     (Config.Energy power) exhausts the budget.
//
// Evaluate them with EvaluateSLO over Config.Timeseries.Snapshot().
func DrainSLORules(cfg Config, budgetJ float64) []SLORule {
	deadline := energy.DrainDeadline(cfg.Energy, budgetJ)
	return []SLORule{
		{
			Name: "drain-energy-budget", Series: "horus_ts_energy_j",
			Op: SLOFinalAtMost, Threshold: budgetJ, RequireData: true,
			Description: "total drain energy must fit the battery's hold-up budget (Tables II/III)",
		},
		{
			Name: "drain-energy-frac", Series: "horus_ts_energy_budget_frac",
			Op: SLOMaxAtMost, Threshold: 1.0,
			Description: "energy drawdown must never exceed the battery budget mid-drain",
		},
		{
			Name: "drain-deadline", Series: "horus_ts_drain_time_ps",
			Op: SLOFinalAtMost, Threshold: float64(deadline), RequireData: true,
			Description: "drain must complete before processor draw alone exhausts the battery",
		},
	}
}

// TortureSLORules builds the torture-matrix objective: the
// silent-corruption counter series must be zero at every point, for every
// (scheme, fault) cell.
func TortureSLORules() []SLORule {
	return []SLORule{{
		Name: "no-silent-corruption", Series: "horus_ts_torture_silent_total",
		Op: SLOAlwaysZero, RequireData: true,
		Description: "recovery must never accept corrupted data as valid (torture matrix)",
	}}
}

// LitmusSLORules builds the persistency-litmus objective: the per-ordering
// silent-corruption series must be zero at every point, for every scheme.
func LitmusSLORules() []SLORule {
	return []SLORule{{
		Name: "no-silent-reordering", Series: "horus_ts_litmus_silent_total",
		Op: SLOAlwaysZero, RequireData: true,
		Description: "no admissible write reordering may recover to silently wrong data (litmus sweep)",
	}}
}
