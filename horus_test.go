package horus

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/hierarchy"
)

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DataSize != 32<<30 {
		t.Error("data size must be 32GB")
	}
	h := cfg.hierarchyConfig()
	if h.TotalLines() != 295936 {
		t.Errorf("Table I hierarchy lines = %d, want 295936", h.TotalLines())
	}
	if cfg.Sec.CounterCacheBytes != 256<<10 || cfg.Sec.MACCacheBytes != 512<<10 || cfg.Sec.TreeCacheBytes != 256<<10 {
		t.Error("metadata cache sizes must match Table I")
	}
	if cfg.Sec.AESCycles != 40 || cfg.Sec.MACCycles != 160 {
		t.Error("crypto latencies must match Table I")
	}
}

func TestRunDrainAllSchemesTestScale(t *testing.T) {
	cfg := TestConfig()
	for _, s := range AllSchemes() {
		res, err := RunDrain(cfg, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.BlocksDrained != cfg.hierarchyConfig().TotalLines() {
			t.Errorf("%v drained %d blocks", s, res.BlocksDrained)
		}
		if res.DrainTime <= 0 {
			t.Errorf("%v drain time not positive", s)
		}
	}
}

func TestDrainBeforeFillFails(t *testing.T) {
	sys := NewSystem(TestConfig(), NonSecure)
	if _, err := sys.Drain(); err == nil {
		t.Error("Drain before Fill must fail")
	}
}

func TestWarmupLeavesMetadataResidue(t *testing.T) {
	cfg := TestConfig()
	sys := NewSystem(cfg, HorusSLM)
	if err := sys.Warmup(); err != nil {
		t.Fatal(err)
	}
	if sys.Core.Sec.DirtyMetadataLines() == 0 {
		t.Error("warmup left no dirty metadata")
	}
	// The drain must then flush that residue (Fig. 12 metadata-flush bar).
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.MemWrites.Get("meta-flush") == 0 {
		t.Error("metadata residue was not flushed")
	}
	if res.Persist.Vault.Count == 0 {
		t.Error("vault record empty despite residue")
	}
}

func TestEndToEndRecoveryBothHorusSchemes(t *testing.T) {
	cfg := TestConfig()
	for _, s := range []Scheme{HorusSLM, HorusDLM} {
		sys := NewSystem(cfg, s)
		if err := sys.Warmup(); err != nil {
			t.Fatal(err)
		}
		sys.Fill()
		golden := sys.Hierarchy.Golden()
		res, err := sys.Drain()
		if err != nil {
			t.Fatal(err)
		}
		sys.Crash()
		rec, err := sys.Recover(res.Persist)
		if err != nil {
			t.Fatalf("%v recovery: %v", s, err)
		}
		if rec.Horus == nil {
			t.Fatal("expected Horus recovery report")
		}
		if rec.Time() <= 0 {
			t.Error("recovery time not positive")
		}
		// The hierarchy must hold exactly the pre-crash dirty content.
		if sys.Hierarchy.DirtyCount() != len(golden) {
			t.Fatalf("%v: hierarchy has %d blocks, want %d", s, sys.Hierarchy.DirtyCount(), len(golden))
		}
		for addr, want := range golden {
			got, ok := sys.Hierarchy.Read(addr)
			if !ok || got != want {
				t.Fatalf("%v: block %#x wrong after recovery", s, addr)
			}
		}
	}
}

func TestEndToEndBaselineRecovery(t *testing.T) {
	cfg := TestConfig()
	res, rec, err := RunRecovery(cfg, BaseLU)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Baseline == nil {
		t.Fatal("expected baseline recovery report")
	}
	if rec.Baseline.LinesRestored != res.Persist.Vault.Count {
		t.Error("line count mismatch")
	}
}

func TestRecoveryDetectsTamperThroughFacade(t *testing.T) {
	cfg := TestConfig()
	sys := NewSystem(cfg, HorusSLM)
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	sys.Core.NVM.Store().CorruptByte(sys.Core.Layout.CHVDataAddr(0), 0, 0x01)
	_, err = sys.Recover(res.Persist)
	var re *RecoveryError
	if !errors.As(err, &re) {
		t.Fatalf("tampered CHV recovered: %v", err)
	}
}

func TestNonSecureRecoveryIsNoOp(t *testing.T) {
	cfg := TestConfig()
	res, rec, err := RunRecovery(cfg, NonSecure)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Horus != nil || rec.Baseline != nil || rec.Time() != 0 {
		t.Error("non-secure recovery must be a no-op")
	}
	_ = res
}

func TestShapeAtTestScale(t *testing.T) {
	// The paper's qualitative ordering must hold even at test scale.
	ds, err := RunDrainSet(TestConfig(), AllSchemes())
	if err != nil {
		t.Fatal(err)
	}
	ns, lu, eu := ds.Results[NonSecure], ds.Results[BaseLU], ds.Results[BaseEU]
	slm, dlm := ds.Results[HorusSLM], ds.Results[HorusDLM]

	if lu.TotalMemAccesses() < 4*ns.TotalMemAccesses() {
		t.Error("Base-LU should blow up memory accesses on the worst-case fill")
	}
	if slm.TotalMemAccesses() > 2*ns.TotalMemAccesses() {
		t.Error("Horus-SLM should stay near the non-secure access count")
	}
	if eu.TotalMACs() <= lu.TotalMACs() {
		t.Error("eager baseline should need the most MACs")
	}
	if dlm.MemWrites.Get("chv-mac") >= slm.MemWrites.Get("chv-mac") {
		t.Error("DLM must write fewer CHV MAC blocks")
	}
	if !(ns.DrainTime < slm.DrainTime && slm.DrainTime < lu.DrainTime) {
		t.Errorf("drain-time ordering broken: ns=%v slm=%v lu=%v",
			ns.DrainTime, slm.DrainTime, lu.DrainTime)
	}
}

func TestExperimentTablesRender(t *testing.T) {
	cfg := TestConfig()
	f6, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := f6.Table().String(); !strings.Contains(out, "Base-LU") {
		t.Error("Fig6 table missing rows")
	}
	if f6.Ratio(BaseLU) <= f6.Ratio(NonSecure) {
		t.Error("Fig6 ratios inverted")
	}

	f11, err := RunFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f11.VsHorus(BaseLU) <= 1 {
		t.Error("Fig11: Base-LU must be slower than Horus")
	}
	for _, s := range AllSchemes() {
		if f11.Normalized(s) <= 0 {
			t.Errorf("Fig11 normalized %v not positive", s)
		}
	}
	_ = f11.Table().String()

	f12, err := RunFig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := f12.Table().String(); !strings.Contains(out, "chv-data") {
		t.Error("Fig12 table missing CHV category")
	}

	f13, err := RunFig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := f13.Table().String(); !strings.Contains(out, "chv-data-mac") {
		t.Error("Fig13 table missing CHV MAC category")
	}
}

func TestLLCSweepAndFig16TestScale(t *testing.T) {
	cfg := TestConfig()
	// Sweep scaled-down "LLC sizes" via explicit hierarchies.
	sizes := []int{128 << 10, 256 << 10}
	var sweep LLCSweep
	sweep.Config = cfg
	for _, size := range sizes {
		c := cfg
		c.Hierarchy = &hierarchy.Config{Levels: []hierarchy.LevelConfig{
			{Name: "L1", SizeBytes: 2 << 10, Ways: 2},
			{Name: "L2", SizeBytes: 64 << 10, Ways: 8},
			{Name: "LLC", SizeBytes: size, Ways: 16},
		}}
		pt := SweepPoint{LLCBytes: size, Results: map[Scheme]Result{}}
		for _, s := range []Scheme{BaseLU, HorusSLM, HorusDLM} {
			res, err := RunDrain(c, s)
			if err != nil {
				t.Fatal(err)
			}
			pt.Results[s] = res
		}
		sweep.Points = append(sweep.Points, pt)
	}
	for i := range sweep.Points {
		slm := sweep.Normalized(i, HorusSLM, func(r Result) float64 { return float64(r.TotalMemAccesses()) })
		if slm >= 0.5 {
			t.Errorf("point %d: Horus-SLM normalized accesses = %.2f, want < 0.5", i, slm)
		}
	}
	_ = sweep.Fig14Table().String()
	_ = sweep.Fig15Table().String()

	f16, err := RunFig16(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = f16
}

func TestFig16DefaultSizes(t *testing.T) {
	sizes := Fig16LLCSizes()
	if len(sizes) != 5 || sizes[0] != 8<<20 || sizes[4] != 128<<20 {
		t.Error("Fig16 sizes must span 8MB to 128MB")
	}
	if got := Fig14LLCSizes(); len(got) != 3 {
		t.Error("Fig14 sizes must be 8/16/32MB")
	}
}

func TestTables2And3TestScale(t *testing.T) {
	cfg := TestConfig()
	t3, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Energy ordering: baselines cost more than Horus.
	if t3.T2.Breakdown[BaseLU].Total() <= t3.T2.Breakdown[HorusSLM].Total() {
		t.Error("Base-LU energy must exceed Horus-SLM")
	}
	// Battery volumes scale with energy and density.
	vLU := t3.Volume(BaseLU, energy.SuperCap)
	vSLM := t3.Volume(HorusSLM, energy.SuperCap)
	if vLU <= vSLM {
		t.Error("Base-LU battery must be larger")
	}
	if t3.Volume(BaseLU, energy.LiThin) >= vLU {
		t.Error("Li-thin must be smaller than SuperCap")
	}
	_ = t3.Table().String()
	_ = t3.T2.Table().String()
}

func TestHeadlineTestScale(t *testing.T) {
	h, err := RunHeadline(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h.MemReduction < 3 || h.MACReduction < 3 || h.TimeReduction < 2 {
		t.Errorf("headline reductions too small: %+v", h)
	}
	if out := h.Table().String(); !strings.Contains(out, "memory requests") {
		t.Error("headline table missing rows")
	}
}

// Recovery timing must start on a fresh power-up clock: the vault restore
// must not queue behind the previous session's drain reservations.
func TestRecoveryStartsOnFreshClock(t *testing.T) {
	cfg := TestConfig()
	sys := NewSystem(cfg, HorusSLM)
	if err := sys.Warmup(); err != nil {
		t.Fatal(err)
	}
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Persist.Vault.Count == 0 {
		t.Fatal("no vault residue to restore")
	}
	sys.Crash()
	rec, err := sys.Recover(res.Persist)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Baseline == nil {
		t.Fatal("vault restore missing from report")
	}
	// The vault is ~500 lines; restoring it takes microseconds on a fresh
	// clock but would exceed the whole drain time if it queued behind the
	// drain's bank reservations.
	if rec.Baseline.RecoveryTime >= res.DrainTime {
		t.Errorf("vault restore (%v) queued behind the drain (%v): stale clock",
			rec.Baseline.RecoveryTime, res.DrainTime)
	}
}

// Results must be robust to the fill seed: the headline ratios are a
// property of the design, not of one lucky layout.
func TestSeedRobustness(t *testing.T) {
	var ratios []float64
	for _, seed := range []int64{1, 2, 3} {
		cfg := TestConfig()
		cfg.Seed = seed
		lu, err := RunDrain(cfg, BaseLU)
		if err != nil {
			t.Fatal(err)
		}
		slm, err := RunDrain(cfg, HorusSLM)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, float64(lu.TotalMemAccesses())/float64(slm.TotalMemAccesses()))
	}
	min, max := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if (max-min)/min > 0.10 {
		t.Errorf("headline ratio varies more than 10%% across seeds: %v", ratios)
	}
}

func TestDrainIsDeterministic(t *testing.T) {
	cfg := TestConfig()
	a, err := RunDrain(cfg, HorusDLM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDrain(cfg, HorusDLM)
	if err != nil {
		t.Fatal(err)
	}
	if a.DrainTime != b.DrainTime || a.TotalMemAccesses() != b.TotalMemAccesses() || a.TotalMACs() != b.TotalMACs() {
		t.Error("identical configs must produce identical results")
	}
}
