package horus

import (
	"testing"
)

// CHV rotation: with N regions, successive episodes write different CHV
// cells, so the hottest CHV block wears N times slower.
func TestCHVRotationLevelsWear(t *testing.T) {
	const episodes = 4
	maxWear := func(regions int) int64 {
		cfg := TestConfig()
		cfg.CHVRegions = regions
		sys := NewSystem(cfg, HorusSLM)
		for e := 0; e < episodes; e++ {
			if e == 0 {
				sys.Fill()
			}
			res, err := sys.Drain()
			if err != nil {
				t.Fatal(err)
			}
			sys.Crash()
			if _, err := sys.Recover(res.Persist); err != nil {
				t.Fatal(err)
			}
		}
		lay := sys.Core.Layout
		max, _ := sys.Core.NVM.WearInRange(lay.CHVDataBase, lay.VaultBase)
		return max
	}
	single := maxWear(1)
	rotated := maxWear(episodes)
	if single != episodes {
		t.Errorf("single-region hottest CHV cell wear = %d, want %d", single, episodes)
	}
	if rotated != 1 {
		t.Errorf("rotated hottest CHV cell wear = %d, want 1", rotated)
	}
}

// Rotation must not break recovery: every episode recovers from its own
// region, including after wrap-around.
func TestCHVRotationRecoveryAcrossWrap(t *testing.T) {
	cfg := TestConfig()
	cfg.CHVRegions = 3
	sys := NewSystem(cfg, HorusDLM)
	for e := 0; e < 7; e++ { // wraps the 3 regions twice
		if e == 0 {
			sys.Fill()
		}
		golden := sys.Hierarchy.Golden()
		res, err := sys.Drain()
		if err != nil {
			t.Fatalf("episode %d drain: %v", e, err)
		}
		if want := uint64(e % 3); res.Persist.CHVRegion != want {
			t.Fatalf("episode %d used region %d, want %d", e, res.Persist.CHVRegion, want)
		}
		sys.Crash()
		if _, err := sys.Recover(res.Persist); err != nil {
			t.Fatalf("episode %d recover: %v", e, err)
		}
		for addr, want := range golden {
			got, ok := sys.Hierarchy.Read(addr)
			if !ok || got != want {
				t.Fatalf("episode %d: block %#x wrong after recovery", e, addr)
			}
		}
	}
}

// An attacker replaying a PREVIOUS REGION's content into the current region
// must still be caught (drain counters are global across regions).
func TestCHVRotationCrossRegionReplayDetected(t *testing.T) {
	cfg := TestConfig()
	cfg.CHVRegions = 2
	sys := NewSystem(cfg, HorusSLM)
	sys.Fill()
	res0, err := sys.Drain() // region 0
	if err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	if _, err := sys.Recover(res0.Persist); err != nil {
		t.Fatal(err)
	}
	res1, err := sys.Drain() // region 1
	if err != nil {
		t.Fatal(err)
	}
	// Copy region 0's episode into region 1.
	lay := sys.Core.Layout
	st := sys.Core.NVM.Store()
	n := res1.Persist.EDC
	for i := uint64(0); i < n; i++ {
		st.WriteBlock(lay.CHVDataAddrR(1, i), st.ReadBlock(lay.CHVDataAddrR(0, i)))
	}
	for g := uint64(0); g*8 < n; g++ {
		a1, _ := lay.CHVAddrBlockAddrR(1, g*8)
		a0, _ := lay.CHVAddrBlockAddrR(0, g*8)
		st.WriteBlock(a1, st.ReadBlock(a0))
		m1, _ := lay.CHVMACBlockAddrR(1, g*8)
		m0, _ := lay.CHVMACBlockAddrR(0, g*8)
		st.WriteBlock(m1, st.ReadBlock(m0))
	}
	sys.Crash()
	if _, err := sys.Recover(res1.Persist); err == nil {
		t.Fatal("cross-region replay went undetected")
	}
}

// Wear accounting sanity through the facade: drains concentrate writes in
// the CHV, and WearStats reflects it.
func TestWearStatsReflectDrainTraffic(t *testing.T) {
	cfg := TestConfig()
	sys := NewSystem(cfg, HorusSLM)
	sys.Fill()
	res, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.Core.NVM.WearStats()
	if ws.TotalWrites < res.MemWrites.Total() {
		t.Error("wear total below write count")
	}
	if ws.UniqueBlocks == 0 || ws.MaxWrites == 0 {
		t.Error("wear stats empty after a drain")
	}
	lay := sys.Core.Layout
	_, chvTotal := sys.Core.NVM.WearInRange(lay.CHVDataBase, lay.VaultBase)
	if chvTotal < int64(res.BlocksDrained) {
		t.Error("CHV wear below drained block count")
	}
}
