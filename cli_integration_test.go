package horus_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// buildCLIs compiles every command once into a temp dir and returns the
// binary paths keyed by name.
func buildCLIs(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"horus-drain", "horus-experiments", "horus-recover", "horus-runtime", "horus-plan"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	return bins
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIs drives every command end-to-end at test scale and checks the
// load-bearing lines of their output.
func TestCLIs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs all binaries")
	}
	bins := buildCLIs(t)

	t.Run("drain", func(t *testing.T) {
		out := run(t, bins["horus-drain"], "-scale", "test", "-scheme", "horus-dlm", "-v", "-compare")
		for _, want := range []string{"Horus-DLM", "blocks drained:", "chv-data=", "vs non-secure:"} {
			if !strings.Contains(out, want) {
				t.Errorf("drain output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("drain-access-trace", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "t.csv")
		run(t, bins["horus-drain"], "-scale", "test", "-scheme", "horus-slm", "-access-trace", trace)
		b, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(b), "seq,time_ps,kind,addr,category") {
			t.Error("trace CSV header missing")
		}
		if !strings.Contains(string(b), "chv-data") {
			t.Error("trace missing CHV events")
		}
	})

	t.Run("drain-timeline-trace", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "t.trace.json")
		out := run(t, bins["horus-drain"], "-scale", "test", "-scheme", "horus-dlm",
			"-trace", trace, "-trace-attrib")
		for _, want := range []string{"Drain critical path by binding resource", "(drain time)", "100.0%", "timeline:"} {
			if !strings.Contains(out, want) {
				t.Errorf("attribution output missing %q:\n%s", want, out)
			}
		}
		b, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			TraceEvents []struct {
				Ph   string         `json:"ph"`
				Pid  int            `json:"pid"`
				Tid  int            `json:"tid"`
				Cat  string         `json:"cat"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(b, &tr); err != nil {
			t.Fatalf("trace file is not valid JSON: %v", err)
		}
		// Per-thread reservations must not overlap. Validate on the exact
		// picosecond args — the float ts/dur fields round-trip through binary
		// floating point and would report false overlaps on touching slices.
		type ival struct{ start, end int64 }
		type key struct{ pid, tid int }
		perThread := map[key][]ival{}
		for _, e := range tr.TraceEvents {
			if e.Ph != "X" || e.Cat == "critical-path" {
				continue
			}
			s, ok1 := e.Args["start_ps"].(float64)
			d, ok2 := e.Args["end_ps"].(float64)
			if !ok1 || !ok2 {
				t.Fatalf("slice missing start_ps/end_ps args: %+v", e.Args)
			}
			k := key{e.Pid, e.Tid}
			perThread[k] = append(perThread[k], ival{int64(s), int64(d)})
		}
		if len(perThread) == 0 {
			t.Fatal("trace contains no reservation slices")
		}
		for k, ivs := range perThread {
			sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
			for i := 1; i < len(ivs); i++ {
				if ivs[i].start < ivs[i-1].end {
					t.Errorf("pid %d tid %d: [%d,%d) overlaps [%d,%d)", k.pid, k.tid,
						ivs[i].start, ivs[i].end, ivs[i-1].start, ivs[i-1].end)
				}
			}
		}
	})

	t.Run("drain-metrics", func(t *testing.T) {
		prom := filepath.Join(t.TempDir(), "m.prom")
		out := run(t, bins["horus-drain"], "-scale", "test", "-scheme", "horus-slm", "-metrics", prom)
		if !strings.Contains(out, "Lifecycle spans") {
			t.Errorf("drain output missing span tree:\n%s", out)
		}
		b, err := os.ReadFile(prom)
		if err != nil {
			t.Fatal(err)
		}
		text := string(b)
		for _, want := range []string{
			"# TYPE horus_mem_bank_utilization gauge",
			`horus_mem_bank_utilization{bank="0",phase="drain",scheme="Horus-SLM"}`,
			"# TYPE horus_span_duration_ps_total counter",
			`horus_span_duration_ps_total{path="drain"}`,
			`horus_span_duration_ps_total{path="drain/flush-blocks"}`,
			`horus_drain_time_ps{scheme="Horus-SLM"}`,
			`horus_sec_engine_utilization{engine="aes"`,
		} {
			if !strings.Contains(text, want) {
				t.Errorf("prom snapshot missing %q", want)
			}
		}
	})

	t.Run("recover-metrics-json", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "m.json")
		run(t, bins["horus-recover"], "-scheme", "horus-dlm", "-metrics", path, "-metrics-format", "json")
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Counters []struct {
				Name string `json:"name"`
			} `json:"counters"`
			Gauges []struct {
				Name string `json:"name"`
			} `json:"gauges"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(b, &snap); err != nil {
			t.Fatalf("snapshot not valid JSON: %v", err)
		}
		if len(snap.Counters) == 0 || len(snap.Gauges) == 0 {
			t.Errorf("JSON snapshot sparse: %d counters, %d gauges", len(snap.Counters), len(snap.Gauges))
		}
		names := map[string]bool{}
		for _, s := range snap.Spans {
			names[s.Name] = true
		}
		for _, want := range []string{"run", "drain", "recover"} {
			if !names[want] {
				t.Errorf("JSON snapshot missing top-level span %q (have %v)", want, names)
			}
		}
	})

	t.Run("experiments", func(t *testing.T) {
		dir := t.TempDir()
		out := run(t, bins["horus-experiments"], "-exp", "fig6,headline", "-scale", "test", "-csv", dir)
		for _, want := range []string{"Fig. 6", "Headline", "Base-LU"} {
			if !strings.Contains(out, want) {
				t.Errorf("experiments output missing %q", want)
			}
		}
		files, _ := os.ReadDir(dir)
		if len(files) != 2 {
			t.Errorf("csv dir has %d files, want 2", len(files))
		}
	})

	t.Run("recover-clean-and-attacked", func(t *testing.T) {
		out := run(t, bins["horus-recover"], "-scheme", "slm")
		if !strings.Contains(out, "verified") {
			t.Errorf("clean recovery output wrong:\n%s", out)
		}
		out = run(t, bins["horus-recover"], "-scheme", "dlm", "-attack", "splice")
		if !strings.Contains(out, "attack detected") {
			t.Errorf("attack not detected:\n%s", out)
		}
	})

	t.Run("runtime", func(t *testing.T) {
		out := run(t, bins["horus-runtime"], "-workload", "txlog", "-domain", "wpq", "-ops", "4000", "-crash")
		for _, want := range []string{"ADR+WPQ", "recovered in", "verified"} {
			if !strings.Contains(out, want) {
				t.Errorf("runtime output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("plan", func(t *testing.T) {
		out := run(t, bins["horus-plan"], "-llc", "64")
		for _, want := range []string{"64 MB LLC", "Horus-SLM", "SuperCap"} {
			if !strings.Contains(out, want) {
				t.Errorf("plan output missing %q:\n%s", want, out)
			}
		}
	})
}
